"""DynamicOracle: the union stays consistent and plans stay hygienic."""

import numpy as np
import pytest

from repro.dynamic import DynamicGraph, DynamicOracle, pair_codes, tree_touches
from repro.graphs.build import union_with_edges
from repro.graphs.errors import InvalidGraphError
from repro.graphs.generators import erdos_renyi
from repro.hopsets.params import HopsetParams
from repro.pram.machine import PRAM
from repro.sssp.bellman_ford import bellman_ford

PARAMS = HopsetParams(epsilon=0.5)


@pytest.fixture()
def oracle():
    g = erdos_renyi(50, 0.12, seed=4, w_range=(1.0, 3.0))
    return DynamicOracle(g, params=PARAMS)


# -- helpers ------------------------------------------------------------------


def test_pair_codes_sorts_and_dedups():
    codes = pair_codes([(3, 1), (1, 3), (0, 2)], n=10)
    assert codes.tolist() == [2, 13]
    assert pair_codes([], n=10).size == 0


def test_tree_touches_detects_tree_edges_only():
    parent = np.array([0, 0, 1, -1])  # tree: 0-1, 1-2; vertex 3 unreached
    n = 4
    assert tree_touches(parent, pair_codes([(0, 1)], n), n)
    assert tree_touches(parent, pair_codes([(2, 1)], n), n)
    assert not tree_touches(parent, pair_codes([(0, 2)], n), n)  # non-tree pair
    assert not tree_touches(parent, pair_codes([(0, 3)], n), n)  # unreached
    assert not tree_touches(parent, np.zeros(0, dtype=np.int64), n)


# -- union consistency --------------------------------------------------------


def _union_reference(oracle):
    """The union rebuilt from scratch — what patching must agree with."""
    return union_with_edges(
        oracle.graph.snapshot(), *oracle.hopset.live_edge_arrays()
    )


def _assert_union_matches(oracle):
    got = oracle.union.snapshot()
    ref = _union_reference(oracle)
    assert got.num_edges == ref.num_edges
    assert np.array_equal(got.edge_u, ref.edge_u)
    assert np.array_equal(got.edge_v, ref.edge_v)
    assert np.array_equal(got.edge_w, ref.edge_w)


def test_incremental_union_patch_matches_rematerialization(oracle):
    rng = np.random.default_rng(8)
    g = oracle.graph
    for _ in range(25):
        i = int(rng.integers(0, g.edge_u.size))
        u, v = int(g.edge_u[i]), int(g.edge_v[i])
        if g.has_edge(u, v):
            if rng.random() < 0.3:
                oracle.apply("delete", u, v)
            else:
                oracle.apply("update", u, v, float(rng.uniform(0.5, 6.0)))
        else:
            oracle.apply("update", u, v, float(rng.uniform(0.5, 6.0)))
        _assert_union_matches(oracle)


def test_improved_flag_semantics(oracle):
    g = oracle.graph
    u, v = int(g.edge_u[0]), int(g.edge_v[0])
    w = g.edge_weight(u, v)
    assert oracle.apply("update", u, v, w * 2)["improved"] is False
    assert oracle.apply("update", u, v, w)["improved"] is True
    assert oracle.apply("update", u, v, w)["improved"] is False  # no-op
    assert oracle.apply("delete", u, v)["improved"] is False
    assert oracle.apply("update", u, v, w)["improved"] is True  # re-insert
    with pytest.raises(InvalidGraphError):
        oracle.apply("teleport", u, v)
    with pytest.raises(InvalidGraphError):
        oracle.apply("update", u, v)  # missing weight


def test_union_queries_never_under_estimate(oracle):
    rng = np.random.default_rng(3)
    g = oracle.graph
    for _ in range(15):
        i = int(rng.integers(0, g.edge_u.size))
        u, v = int(g.edge_u[i]), int(g.edge_v[i])
        if g.has_edge(u, v):
            oracle.apply("update", u, v, float(rng.uniform(0.5, 8.0)))
        else:
            oracle.apply("update", u, v, float(rng.uniform(0.5, 8.0)))
    snap = oracle.graph.snapshot()
    budget = 2 * oracle.hopset.beta + 1
    for s in (0, 11):
        exact = bellman_ford(PRAM(), snap, s, hops=snap.n - 1).dist
        approx = bellman_ford(PRAM(), oracle.union, s, hops=budget).dist
        fin = np.isfinite(exact)
        assert np.all(approx[fin] >= exact[fin] - 1e-9)


def test_maintain_rematerializes_union(oracle):
    oracle.hopset.refresh_below = 0.999
    oracle.hopset.rebuild_below = 0.0
    g = oracle.graph
    # decay until some records die
    for u, v in list(zip(g.edge_u, g.edge_v)):
        u, v = int(u), int(v)
        if g.has_edge(u, v):
            oracle.apply("update", u, v, g.edge_weight(u, v) * 5)
        if oracle.hopset.live_fraction < 1.0:
            break
    old_union = oracle.union
    report = oracle.maintain()
    assert report.action in ("refresh", "rebuild")
    assert oracle.union is not old_union  # fresh object, fresh plans
    _assert_union_matches(oracle)


def test_plan_hygiene_on_mutation(oracle):
    ws = oracle.pram.workspace
    plan = ws.relax_plan(oracle.union)
    assert ws.relax_plan(oracle.union) is plan  # cached
    g = oracle.graph
    u, v = int(g.edge_u[2]), int(g.edge_v[2])
    oracle.apply("update", u, v, g.edge_weight(u, v) * 2)
    assert ws.relax_plan(oracle.union) is not plan  # dropped and rebuilt


def test_stats_shape(oracle):
    s = oracle.stats()
    assert s["updates"] == 0
    assert s["hopset"]["live_fraction"] == 1.0
    assert s["union_edges"] == oracle.union.num_edges
