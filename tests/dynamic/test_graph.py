"""DynamicGraph: the mutable CSR core of the dynamic subsystem."""

import numpy as np
import pytest

from repro.dynamic import DynamicGraph
from repro.graphs.errors import InvalidGraphError, VertexError
from repro.graphs.generators import erdos_renyi, grid_graph
from repro.pram.machine import PRAM
from repro.sssp.bellman_ford import bellman_ford


@pytest.fixture()
def base():
    return erdos_renyi(40, 0.12, seed=2701, w_range=(1.0, 4.0))


def _pick_edge(g, i=0):
    return int(g.edge_u[i]), int(g.edge_v[i])


def test_wraps_base_bit_identically(base):
    dg = DynamicGraph(base)
    assert dg.n == base.n
    assert dg.num_edges == base.num_edges
    assert np.array_equal(dg.weights, base.weights)
    assert np.array_equal(dg.indptr, base.indptr)
    snap = dg.snapshot()
    assert np.array_equal(snap.edge_w, base.edge_w)
    assert np.array_equal(snap.indices, base.indices)


def test_pair_lookup_is_symmetric_and_total(base):
    dg = DynamicGraph(base)
    for i in range(base.num_edges):
        u, v = _pick_edge(base, i)
        assert dg.edge_index(u, v) == dg.edge_index(v, u) == i
        assert dg.edge_weight(u, v) == base.edge_w[i]
    assert dg.edge_index(0, base.n - 1) is None or dg.has_edge(0, base.n - 1)


def test_set_weight_updates_both_arc_slots(base):
    dg = DynamicGraph(base)
    u, v = _pick_edge(base, 3)
    old = dg.set_weight(u, v, 9.5)
    assert old == base.edge_w[3]
    assert dg.edge_weight(u, v) == 9.5
    # both CSR directions see the new weight
    for a, b in ((u, v), (v, u)):
        lo, hi = dg.indptr[a], dg.indptr[a + 1]
        slot = np.flatnonzero(dg.indices[lo:hi] == b)
        assert dg.weights[lo:hi][slot] == 9.5
    assert dg.generation == 1
    assert dg.structural_generation == 0


def test_same_weight_set_does_not_bump_generation(base):
    dg = DynamicGraph(base)
    u, v = _pick_edge(base)
    dg.set_weight(u, v, dg.edge_weight(u, v))
    assert dg.generation == 0


def test_direction_guards(base):
    dg = DynamicGraph(base)
    u, v = _pick_edge(base)
    w = dg.edge_weight(u, v)
    with pytest.raises(InvalidGraphError):
        dg.increase_weight(u, v, w / 2)
    with pytest.raises(InvalidGraphError):
        dg.decrease_weight(u, v, w * 2)
    dg.increase_weight(u, v, w * 2)
    dg.decrease_weight(u, v, w)
    assert dg.edge_weight(u, v) == w


def test_delete_tombstones_and_snapshot_drops(base):
    dg = DynamicGraph(base)
    u, v = _pick_edge(base, 1)
    m = dg.num_edges
    dg.delete_edge(u, v)
    assert not dg.has_edge(u, v)
    assert dg.num_edges == m - 1
    assert dg.num_edge_records == m  # the record stays, tombstoned
    assert np.isinf(dg.weights).sum() == 2  # both arc slots
    snap = dg.snapshot()
    assert snap.num_edges == m - 1
    assert not snap.has_edge(u, v)
    with pytest.raises(InvalidGraphError):
        dg.delete_edge(u, v)  # already dead


def test_tombstones_are_relaxation_transparent(base):
    """β-hop exploration over the tombstoned CSR == over the live snapshot."""
    dg = DynamicGraph(base)
    for i in (0, 5, 9):
        dg.delete_edge(*_pick_edge(base, i))
    res_dyn = bellman_ford(PRAM(), dg, 0, hops=base.n - 1, engine="sparse")
    res_snap = bellman_ford(PRAM(), dg.snapshot(), 0, hops=base.n - 1)
    assert np.array_equal(res_dyn.dist, res_snap.dist)


def test_insert_resurrects_tombstone_in_place(base):
    dg = DynamicGraph(base)
    u, v = _pick_edge(base, 2)
    dg.delete_edge(u, v)
    assert dg.insert_edge(u, v, 2.25) is False  # no recompaction
    assert dg.edge_weight(u, v) == 2.25
    assert dg.recompactions == 0


def test_insert_new_pair_recompacts(base):
    dg = DynamicGraph(base)
    u, v = 0, base.n - 1
    if dg.has_edge(u, v):
        dg.delete_edge(u, v)
        dg.insert_edge(u, v, 1.0)
        assert dg.recompactions == 0
        return
    sg_before = dg.structural_generation
    assert dg.insert_edge(u, v, 1.5) is True
    assert dg.recompactions == 1
    assert dg.structural_generation == sg_before + 1
    assert dg.has_edge(u, v)
    assert dg.snapshot().has_edge(u, v)
    with pytest.raises(InvalidGraphError):
        dg.insert_edge(u, v, 1.0)  # live duplicate


def test_snapshot_cached_per_generation(base):
    dg = DynamicGraph(base)
    assert dg.snapshot() is dg.snapshot()
    dg.set_weight(*_pick_edge(base), 8.0)
    s1 = dg.snapshot()
    assert s1 is dg.snapshot()
    assert s1.edge_w[0] == 8.0


def test_validation_errors(base):
    dg = DynamicGraph(base)
    with pytest.raises(VertexError):
        dg.edge_weight(-1, 0)
    with pytest.raises(VertexError):
        dg.set_weight(0, base.n, 1.0)
    u, v = _pick_edge(base)
    for bad in (0.0, -1.0, float("inf"), float("nan")):
        with pytest.raises(InvalidGraphError):
            dg.set_weight(u, v, bad)
    with pytest.raises(InvalidGraphError):
        dg.insert_edge(3, 3, 1.0)
    missing = next(
        (a, b)
        for a in range(base.n)
        for b in range(a + 1, base.n)
        if not dg.has_edge(a, b)
    )
    with pytest.raises(InvalidGraphError):
        dg.set_weight(*missing, 1.0)


def test_grid_round_trip_after_many_mutations():
    g = grid_graph(6, 6, seed=5, w_range=(1.0, 3.0))
    dg = DynamicGraph(g)
    rng = np.random.default_rng(7)
    for _ in range(60):
        i = int(rng.integers(0, g.num_edges))
        u, v = int(g.edge_u[i]), int(g.edge_v[i])
        if dg.has_edge(u, v):
            if rng.random() < 0.3:
                dg.delete_edge(u, v)
            else:
                dg.set_weight(u, v, float(rng.uniform(0.5, 5.0)))
        else:
            dg.insert_edge(u, v, float(rng.uniform(0.5, 5.0)))
    snap = dg.snapshot()
    eu, ev, ew = dg.live_edges()
    assert snap.num_edges == eu.size
    for a, b, w in zip(eu, ev, ew):
        assert snap.edge_weight(int(a), int(b)) == w
