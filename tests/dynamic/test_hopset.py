"""DynamicHopset: cover-aware kills, per-scale refresh, safety invariants.

The load-bearing invariant throughout: β-hop distances over G ∪ (live H)
must **never under-estimate** the exact distances, no matter how decayed
the hopset is, and maintenance only restores accuracy — never breaks
safety.
"""

import numpy as np
import pytest

from repro.dynamic import DynamicGraph, DynamicHopset
from repro.graphs.errors import InvalidGraphError
from repro.graphs.generators import erdos_renyi
from repro.hopsets.errors import PathReportingError
from repro.hopsets.hopset import Hopset, HopsetEdge
from repro.hopsets.params import HopsetParams
from repro.pram.machine import PRAM
from repro.sssp.bellman_ford import bellman_ford


PARAMS = HopsetParams(epsilon=0.5)


@pytest.fixture()
def dyn():
    g = erdos_renyi(60, 0.1, seed=9, w_range=(1.0, 4.0))
    dg = DynamicGraph(g)
    return dg, DynamicHopset(dg, params=PARAMS)


def _assert_never_under(dg, dh, sources=(0, 7, 31)):
    # 1e-9 is the repo-wide slack for the w_min normalize/rescale float
    # round-trip of the build (cf. tests/hopsets/, tests/sssp/test_dynamic.py)
    union = dh.union_graph()
    snap = dg.snapshot()
    budget = 2 * dh.beta + 1
    for s in sources:
        exact = bellman_ford(PRAM(), snap, s, hops=snap.n - 1).dist
        approx = bellman_ford(PRAM(), union, s, hops=budget).dist
        fin = np.isfinite(exact)
        assert np.all(approx[fin] >= exact[fin] - 1e-9), "hopset under-estimated"
        assert not np.isfinite(approx[~fin]).any()


def test_fresh_hopset_is_fully_live(dyn):
    dg, dh = dyn
    assert dh.live_fraction == 1.0
    assert dh.num_records() == dh.live_records() > 0
    assert dh.scales() == sorted(dh.scales())
    _assert_never_under(dg, dh)


def _unconditional_closure(dh, pair):
    """The DecrementalSSSP prototype's kill set: every transitive dependent."""
    stack, seen, doomed = [pair], set(), set()
    while stack:
        p = stack.pop()
        if p in seen:
            continue
        seen.add(p)
        for idx in dh._dependents.get(p, ()):
            if idx not in doomed:
                doomed.add(idx)
                e = dh.records[idx]
                stack.append((e.u, e.v) if e.u < e.v else (e.v, e.u))
    return doomed


def test_cover_aware_kill_refines_unconditional_closure(dyn):
    dg, dh = dyn
    for i, (u, v) in enumerate(list(zip(dg.edge_u, dg.edge_v))[:20]):
        u, v = int(u), int(v)
        pair = (u, v) if u < v else (v, u)
        doomed = _unconditional_closure(dh, pair)
        alive_before = set(np.flatnonzero(dh._alive))
        old = dg.edge_weight(u, v)
        factor = 1.02 if i % 2 == 0 else 4.0
        dg.set_weight(u, v, old * factor)
        dh.on_weight_increase(u, v, old, old * factor)
        killed = alive_before - set(np.flatnonzero(dh._alive))
        # soundness boundary: we never kill outside the prototype's closure
        assert killed <= doomed
    _assert_never_under(dg, dh)


def _shadowed_pair_setup():
    """A heavy edge shadowed by a cheap record, with a dependent above it.

    Graph: 0—1—2 cheap, heavy direct (0,2), tail (2,3).  ``r_low``
    (scale 3) certifies (0,2) at 2.0 via [0,1,2]; ``r_high`` (scale 4)
    steps *through* pair (0,2) relying on ``r_low``'s support.
    """
    from repro.graphs.build import from_edges

    g = from_edges(
        4, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 10.0), (2, 3, 1.0)]
    )
    hs = Hopset(n=4, beta=4, epsilon=0.5, meta={"k0": 3, "lambda": 4})
    hs.add(
        [
            HopsetEdge(
                u=0, v=2, weight=2.0, scale=3, phase=0, kind="popular",
                path=(0, 1, 2),
            ),
            HopsetEdge(
                u=0, v=3, weight=3.0, scale=4, phase=0, kind="popular",
                path=(0, 2, 3),
            ),
        ]
    )
    dg = DynamicGraph(g)
    return dg, DynamicHopset(dg, hs, PARAMS)


def test_shadowed_step_spares_dependent():
    # worsening the heavy edge leaves its pair's support (the cheap
    # lower-scale record) intact — the dependent survives, where the
    # prototype's unconditional rule would have killed it
    dg, dh = _shadowed_pair_setup()
    assert 1 in _unconditional_closure(dh, (0, 2))  # prototype kills r_high
    old = dg.edge_weight(0, 2)
    dg.set_weight(0, 2, 20.0)
    assert dh.on_weight_increase(0, 2, old, 20.0) == []
    assert dh.live_fraction == 1.0  # both records still certified


def test_support_collapse_cascades_upward():
    # deleting (0,1) uncertifies r_low (its path used the edge), which
    # was the only sub-scale-4 support of step (0,2) after the heavy
    # edge worsened — so r_high must die too, transitively
    dg, dh = _shadowed_pair_setup()
    dg.set_weight(0, 2, 20.0)
    dh.on_weight_increase(0, 2, 10.0, 20.0)
    old = dg.delete_edge(0, 1)
    risen = dh.on_delete(0, 1, old)
    assert dh.live_records() == 0
    assert (0, 1) in risen and (0, 2) in risen and (0, 3) in risen
    _assert_never_under(dg, dh, sources=(0, 3))


def test_delete_kills_dependents_and_propagates(dyn):
    dg, dh = dyn
    kills_before = dh.kills
    fraction = dh.live_fraction
    # delete until something actually dies
    for u, v in list(zip(dg.edge_u, dg.edge_v)):
        u, v = int(u), int(v)
        if not dg.has_edge(u, v):
            continue
        old = dg.delete_edge(u, v)
        dh.on_delete(u, v, old)
        if dh.kills > kills_before:
            break
    assert dh.kills > kills_before
    assert dh.live_fraction < fraction
    _assert_never_under(dg, dh)


def test_delete_last_graph_edge_on_multi_record_pair(dyn):
    """A pair can be spanned by several records *and* a graph edge.

    Deleting the graph edge must not orphan the pair: surviving records
    keep covering it in the union, surviving dependents of the pair must
    still be supported at no worse than the old graph weight by the
    remaining lower-scale records, and safety holds throughout.
    """
    dg, dh = dyn
    pair = next(
        (
            p
            for p, idxs in dh._records_on_pair.items()
            if len(idxs) >= 2 and dg.has_edge(*p)
        ),
        None,
    )
    assert pair is not None, "fixture has no multi-record pair with an edge"
    u, v = pair
    idxs = list(dh._records_on_pair[pair])
    old = dg.delete_edge(u, v)
    dh.on_delete(u, v, old)
    assert not dg.has_edge(u, v)
    # a dependent that survived the deletion is one whose support did not
    # rise: the pair's remaining sub-scale records certify its step at no
    # worse than the vanished graph weight
    for j in dh._dependents.get(pair, ()):
        if dh._alive[j] and j not in idxs:
            assert dh._rec_below(pair, int(dh._scale_of[j])) <= old + 1e-9
    alive_on_pair = [i for i in idxs if dh._alive[i]]
    if alive_on_pair:
        best = min(float(dh._rec_w[i]) for i in alive_on_pair)
        assert dh.cover(u, v) == best
        # the union still spans the pair through the surviving records
        d = bellman_ford(PRAM(), dh.union_graph(), u, hops=2 * dh.beta + 1)
        assert d.dist[v] <= best + 1e-9
    else:
        assert dh.record_cover(u, v) == float("inf")
    _assert_never_under(dg, dh)


def _decay(dg, dh, frac, seed=3):
    """Worsen a deterministic slice of edges until decay bites."""
    rng = np.random.default_rng(seed)
    edges = list(zip(dg.edge_u, dg.edge_v))
    for u, v in edges[:: max(1, int(1 / frac))]:
        u, v = int(u), int(v)
        if not dg.has_edge(u, v):
            continue
        old = dg.edge_weight(u, v)
        new = old * float(rng.uniform(3.0, 8.0))
        dg.set_weight(u, v, new)
        dh.on_weight_increase(u, v, old, new)


def test_scale_refresh_restores_liveness(dyn):
    dg, dh = dyn
    dh.refresh_below = 0.999  # any decay at all triggers a refresh
    dh.rebuild_below = 0.0  # and never the full rebuild
    _decay(dg, dh, frac=0.5)
    assert dh.live_fraction < 1.0
    before = dh.live_fraction
    report = dh.maintain()
    assert report.action == "refresh"
    assert report.scales_refreshed == sorted(report.scales_refreshed)
    assert dh.scale_refreshes == len(report.scales_refreshed) > 0
    assert report.live_before == pytest.approx(before)
    assert dh.live_fraction == report.live_after > before
    _assert_never_under(dg, dh)


def test_full_rebuild_when_too_far_gone(dyn):
    dg, dh = dyn
    dh.rebuild_below = dh.refresh_below = 1.0  # any decay → below threshold
    _decay(dg, dh, frac=1.0)
    assert dh.live_fraction < 1.0
    report = dh.maintain()
    assert report.action == "rebuild"
    assert dh.full_rebuilds == 1
    assert dh.live_fraction == 1.0
    _assert_never_under(dg, dh)


def test_healthy_hopset_maintains_to_none(dyn):
    dg, dh = dyn
    report = dh.maintain()
    assert report.action == "none"
    assert report.scales_refreshed == []
    assert report.work == 0


def test_maintenance_emits_traffic(dyn):
    dg, dh = dyn
    from repro.pram.cost import CostHook

    seen = []

    class Hook(CostHook):
        def on_traffic(self, label, calls, elements, reads, writes):
            seen.append(label)

    dh.pram.cost.subscribe(Hook())
    dh.refresh_below = 0.999
    dh.rebuild_below = 0.0
    _decay(dg, dh, frac=0.5)
    dh.maintain()
    assert "dynamic.rebuild.scale" in seen


def test_prebuilt_hopset_must_report_paths():
    g = erdos_renyi(30, 0.15, seed=1, w_range=(1.0, 2.0))
    bald = Hopset(n=g.n, beta=4, epsilon=0.5)
    bald.add([HopsetEdge(u=0, v=5, weight=3.0, scale=2, phase=0, kind="popular")])
    with pytest.raises(PathReportingError):
        DynamicHopset(DynamicGraph(g), bald, PARAMS)


def test_threshold_validation():
    g = erdos_renyi(20, 0.2, seed=2, w_range=(1.0, 2.0))
    dg = DynamicGraph(g)
    with pytest.raises(InvalidGraphError):
        DynamicHopset(dg, params=PARAMS, rebuild_below=1.5)
    with pytest.raises(InvalidGraphError):
        DynamicHopset(dg, params=PARAMS, refresh_below=0.2, rebuild_below=0.4)
