"""DynamicSSSP: repaired trees must match full recomputes bit-exactly.

The differential safety matrix of the dynamic subsystem: graph families
× update sequences × {frontier repair, forced full rebuild} × execution
backends, with the repaired ``dist`` required to equal a from-scratch
Bellman–Ford on the live snapshot **bit-exactly** after every single
update (never-under is implied by equality), and the parent tree
required to be valid (``dist[v] == dist[parent[v]] + w`` exactly).
"""

import numpy as np
import pytest

from repro.dynamic import DynamicSSSP, RepairStats, fallback_frac_default
from repro.graphs.errors import InvalidGraphError, VertexError
from repro.graphs.generators import erdos_renyi, grid_graph
from repro.pram.backends import ShardedBackend
from repro.pram.machine import PRAM
from repro.sssp.bellman_ford import bellman_ford


def _families():
    return {
        "grid": grid_graph(7, 7, seed=3, w_range=(1.0, 4.0)),
        "er": erdos_renyi(50, 0.1, seed=17, w_range=(0.5, 3.0)),
    }


def _mixed_ops(g, steps, seed, p_delete=0.25):
    """A reproducible mixed schedule over ``g``'s original edge set."""
    rng = np.random.default_rng(seed)
    live = {
        (int(a), int(b)) for a, b in zip(g.edge_u, g.edge_v)
    }
    ops = []
    for _ in range(steps):
        i = int(rng.integers(0, g.num_edges))
        u, v = int(g.edge_u[i]), int(g.edge_v[i])
        if (u, v) in live:
            if rng.random() < p_delete:
                ops.append(("delete", u, v))
                live.discard((u, v))
            else:
                ops.append(("update", u, v, float(rng.uniform(0.5, 6.0))))
        else:
            ops.append(("insert", u, v, float(rng.uniform(0.5, 6.0))))
            live.add((u, v))
    return ops


@pytest.mark.parametrize("family", ["grid", "er"])
@pytest.mark.parametrize("seq_seed, p_delete", [(11, 0.25), (23, 0.6), (5, 0.0)])
def test_differential_repair_vs_rebuild(family, seq_seed, p_delete):
    g = _families()[family]
    d = DynamicSSSP(g, 0)
    for op in _mixed_ops(g, 30, seq_seed, p_delete):
        stats = d.apply(op)
        assert isinstance(stats, RepairStats)
        ref = bellman_ford(PRAM(), d.graph.snapshot(), 0, hops=g.n - 1)
        assert np.array_equal(d.dist, ref.dist), f"diverged after {op}"
        d.verify()  # also checks the parent identity bit-exactly


def test_differential_on_sharded_backend():
    g = grid_graph(6, 6, seed=9, w_range=(1.0, 3.0))
    be = ShardedBackend(workers=2, min_arcs=1)
    try:
        d = DynamicSSSP(g, 0, pram=PRAM(backend=be))
        for op in _mixed_ops(g, 12, seed=41):
            d.apply(op)
            ref = bellman_ford(PRAM(), d.graph.snapshot(), 0, hops=g.n - 1)
            assert np.array_equal(d.dist, ref.dist)
        assert not be.failed
    finally:
        be.close()


def test_increase_on_non_tree_edge_is_noop():
    g = grid_graph(6, 6, seed=2, w_range=(1.0, 2.0))
    d = DynamicSSSP(g, 0)
    non_tree = next(
        (int(a), int(b))
        for a, b in zip(g.edge_u, g.edge_v)
        if d.parent[b] != a and d.parent[a] != b
    )
    before = d.dist.copy()
    stats = d.increase_weight(*non_tree, 50.0)
    assert stats.mode == "noop"
    assert np.array_equal(d.dist, before)
    d.verify()


def test_tree_edge_increase_repairs_subtree():
    g = grid_graph(6, 6, seed=2, w_range=(1.0, 2.0))
    d = DynamicSSSP(g, 0, fallback_frac=1.0)  # never fall back
    tree = next(
        (int(p), int(v))
        for v, p in enumerate(d.parent)
        if p >= 0 and p != v
    )
    stats = d.increase_weight(tree[0], tree[1], 80.0)
    assert stats.mode == "repair"
    assert stats.dirty >= 1 and stats.seeds >= 1
    d.verify()


def test_fallback_threshold_forces_rebuild():
    g = grid_graph(6, 6, seed=2, w_range=(1.0, 2.0))
    d = DynamicSSSP(g, 0, fallback_frac=0.0)
    tree = next(
        (int(p), int(v)) for v, p in enumerate(d.parent) if p >= 0 and p != v
    )
    stats = d.increase_weight(tree[0], tree[1], 80.0)
    assert stats.mode == "rebuild"
    assert stats.est_arcs > stats.threshold_arcs
    assert d.rebuilds == 1
    d.verify()


def test_decrease_and_insert_always_repair():
    g = erdos_renyi(40, 0.1, seed=7, w_range=(2.0, 4.0))
    d = DynamicSSSP(g, 0, fallback_frac=0.0)  # would force rebuild if orphaning
    u, v = int(g.edge_u[0]), int(g.edge_v[0])
    s1 = d.decrease_weight(u, v, 0.5)
    assert s1.mode == "repair"
    missing = next(
        (a, b)
        for a in range(g.n)
        for b in range(a + 1, g.n)
        if not d.graph.has_edge(a, b)
    )
    s2 = d.insert_edge(*missing, 0.25)
    assert s2.mode == "repair"
    d.verify()
    assert d.rebuilds == 0


def test_update_on_disconnected_component_is_inert():
    # vertices {4,5} form an island the source never reaches
    from repro.graphs.build import from_edges

    g = from_edges(6, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (4, 5, 1.0)])
    d = DynamicSSSP(g, 0)
    assert not np.isfinite(d.dist[4]) and not np.isfinite(d.dist[5])
    s = d.set_weight(4, 5, 0.5)  # decrease between two unreached vertices
    assert s.mode == "noop"
    s = d.set_weight(4, 5, 9.0)  # increase on an unreached tree-less edge
    assert s.mode == "noop"
    d.verify()
    assert np.isfinite(d.dist[:4]).all()


def test_charged_work_accounting_splits_by_mode():
    g = grid_graph(7, 7, seed=5, w_range=(1.0, 3.0))
    d = DynamicSSSP(g, 0, fallback_frac=1.0)
    for op in _mixed_ops(g, 20, seed=3):
        d.apply(op)
    assert d.repairs > 0
    assert d.repair_work > 0
    assert d.updates == 20
    # the initial build is charged as rebuild work
    assert d.rebuild_work > 0


def test_env_default_and_validation(monkeypatch):
    monkeypatch.setenv("REPRO_DYN_FALLBACK", "0.75")
    assert fallback_frac_default() == 0.75
    monkeypatch.delenv("REPRO_DYN_FALLBACK")
    assert fallback_frac_default() == 0.25
    g = grid_graph(3, 3, seed=1, w_range=(1.0, 2.0))
    with pytest.raises(VertexError):
        DynamicSSSP(g, -1)
    with pytest.raises(InvalidGraphError):
        DynamicSSSP(g, 0, fallback_frac=-0.1)
    d = DynamicSSSP(g, 0)
    with pytest.raises(InvalidGraphError):
        d.set_weight(0, 8, 1.0)  # not a live edge
    with pytest.raises(InvalidGraphError):
        d.apply(("teleport", 0, 1))
