"""Graph constructors and surgery helpers."""

import numpy as np
import pytest

from repro.graphs.build import (
    from_edge_arrays,
    from_edges,
    reweighted,
    subgraph_by_weight,
    union_with_edges,
)
from repro.graphs.errors import InvalidGraphError


def test_from_edges_triples():
    g = from_edges(3, [(0, 1, 1.0), (1, 2, 2.0)])
    assert g.num_edges == 2
    assert g.edge_weight(1, 2) == 2.0


def test_from_edges_empty():
    g = from_edges(4, [])
    assert g.n == 4 and g.num_edges == 0


def test_parallel_edges_keep_lightest():
    g = from_edges(2, [(0, 1, 5.0), (1, 0, 2.0), (0, 1, 9.0)])
    assert g.num_edges == 1
    assert g.edge_weight(0, 1) == 2.0


def test_from_edges_rejects_self_loop():
    with pytest.raises(InvalidGraphError):
        from_edges(2, [(1, 1, 1.0)])


def test_from_edges_rejects_bad_shape():
    with pytest.raises(InvalidGraphError):
        from_edges(2, [(0, 1)])


def test_union_with_edges_takes_min_on_collision():
    g = from_edges(3, [(0, 1, 5.0), (1, 2, 1.0)])
    u = union_with_edges(g, np.array([0, 0]), np.array([1, 2]), np.array([2.0, 7.0]))
    assert u.edge_weight(0, 1) == 2.0  # improved
    assert u.edge_weight(1, 2) == 1.0  # untouched
    assert u.edge_weight(0, 2) == 7.0  # new
    # original untouched (immutability of inputs)
    assert g.edge_weight(0, 2) == float("inf")


def test_union_with_edges_keeps_lighter_original():
    g = from_edges(2, [(0, 1, 1.0)])
    u = union_with_edges(g, np.array([0]), np.array([1]), np.array([4.0]))
    assert u.edge_weight(0, 1) == 1.0


def test_reweighted():
    g = from_edges(2, [(0, 1, 3.0)])
    h = reweighted(g, 2.0)
    assert h.edge_weight(0, 1) == 6.0
    with pytest.raises(InvalidGraphError):
        reweighted(g, 0.0)


def test_subgraph_by_weight_half_open_interval():
    g = from_edges(4, [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)])
    # (min_w, max_w] — keeps strictly-above min, at-or-below max
    s = subgraph_by_weight(g, min_w=1.0, max_w=2.0)
    assert s.num_edges == 1
    assert s.has_edge(1, 2)
    assert not s.has_edge(0, 1)


def test_subgraph_by_weight_keeps_vertex_count():
    g = from_edges(5, [(0, 1, 1.0)])
    s = subgraph_by_weight(g, max_w=0.5)
    assert s.n == 5 and s.num_edges == 0
