"""Shiloach–Vishkin connected components on the PRAM."""

import numpy as np

from repro.graphs.build import from_edges
from repro.graphs.components import component_sizes, connected_components
from repro.graphs.generators import erdos_renyi, grid_graph
from repro.graphs.csr import Graph
from repro.pram.machine import PRAM


def test_two_components():
    g = from_edges(5, [(0, 1, 1), (1, 2, 1), (3, 4, 1)])
    labels = connected_components(PRAM(), g)
    assert labels[0] == labels[1] == labels[2]
    assert labels[3] == labels[4]
    assert labels[0] != labels[3]


def test_labels_are_min_vertex_ids():
    g = from_edges(6, [(4, 5, 1), (1, 2, 1), (2, 0, 1)])
    labels = connected_components(PRAM(), g)
    assert labels[0] == labels[1] == labels[2] == 0
    assert labels[4] == labels[5] == 4
    assert labels[3] == 3  # isolated


def test_edgeless_graph_all_singletons():
    g = Graph(4, np.zeros(0), np.zeros(0), np.zeros(0))
    labels = connected_components(PRAM(), g)
    assert np.array_equal(labels, np.arange(4))


def test_matches_reference_on_random_graphs():
    import networkx as nx

    for seed in (1, 2, 3):
        g = erdos_renyi(60, 0.03, seed=seed, ensure_connected=False)
        labels = connected_components(PRAM(), g)
        nxg = nx.Graph()
        nxg.add_nodes_from(range(g.n))
        nxg.add_edges_from(zip(g.edge_u.tolist(), g.edge_v.tolist()))
        for comp in nx.connected_components(nxg):
            comp = sorted(comp)
            assert len({int(labels[v]) for v in comp}) == 1
            assert int(labels[comp[0]]) == comp[0]  # min-id labelling


def test_depth_polylog_on_long_path():
    from repro.graphs.generators import path_graph

    pram = PRAM()
    g = path_graph(256)
    connected_components(pram, g)
    # hook + shortcut converges in O(log n) outer rounds of O(log n) depth
    assert pram.cost.depth <= 40 * (np.log2(256) ** 2)


def test_component_sizes():
    g = from_edges(5, [(0, 1, 1), (3, 4, 1)])
    labels = connected_components(PRAM(), g)
    sizes = component_sizes(labels)
    assert sizes == {0: 2, 2: 1, 3: 2}


def test_grid_is_single_component():
    g = grid_graph(5, 5)
    labels = connected_components(PRAM(), g)
    assert np.all(labels == 0)
