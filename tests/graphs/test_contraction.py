"""Quotient graphs for the Klein–Sairam reduction."""

import numpy as np
import pytest

from repro.graphs.build import from_edges
from repro.graphs.contraction import quotient_graph, relabel_dense
from repro.graphs.errors import InvalidGraphError


def sample():
    # two groups {0,1} and {2,3}; crossing edges (1,2,w=3) and (0,3,w=5)
    return from_edges(4, [(0, 1, 1), (2, 3, 1), (1, 2, 3), (0, 3, 5)])


def test_relabel_dense():
    dense, orig = relabel_dense(np.array([7, 7, 3, 9]))
    assert np.array_equal(orig, [3, 7, 9])
    assert np.array_equal(dense, [1, 1, 0, 2])


def test_quotient_keeps_lightest_crossing_edge():
    q = quotient_graph(sample(), np.array([0, 0, 1, 1]))
    assert q.num_nodes == 2
    assert q.graph.num_edges == 1
    assert q.graph.edge_weight(0, 1) == 3.0  # min(3, 5)


def test_quotient_realizing_endpoints():
    q = quotient_graph(sample(), np.array([0, 0, 1, 1]))
    ru, rv = int(q.rep_u[0]), int(q.rep_v[0])
    assert (ru, rv) == (1, 2)
    assert q.node_of[ru] == q.graph.edge_u[0]
    assert q.node_of[rv] == q.graph.edge_v[0]


def test_quotient_members_and_sizes():
    q = quotient_graph(sample(), np.array([0, 0, 1, 1]))
    assert np.array_equal(q.members[0], [0, 1])
    assert np.array_equal(q.members[1], [2, 3])
    assert np.array_equal(q.node_sizes(), [2, 2])


def test_max_weight_drops_heavy_crossings():
    q = quotient_graph(sample(), np.array([0, 0, 1, 1]), max_weight=2.0)
    assert q.graph.num_edges == 0  # both crossings exceed 2


def test_weight_offset_applied_per_endpoint():
    offset = np.array([10.0, 100.0])
    q = quotient_graph(sample(), np.array([0, 0, 1, 1]), weight_offset=offset)
    assert q.graph.edge_weight(0, 1) == 3.0 + 10.0 + 100.0


def test_internal_edges_dropped():
    q = quotient_graph(sample(), np.array([0, 0, 0, 0]))
    assert q.num_nodes == 1
    assert q.graph.num_edges == 0


def test_nondense_labels_accepted():
    q = quotient_graph(sample(), np.array([5, 5, 9, 9]))
    assert q.num_nodes == 2


def test_label_shape_checked():
    with pytest.raises(InvalidGraphError):
        quotient_graph(sample(), np.array([0, 0, 1]))


def test_offset_shape_checked():
    with pytest.raises(InvalidGraphError):
        quotient_graph(sample(), np.array([0, 0, 1, 1]), weight_offset=np.array([1.0]))


def test_multiple_crossing_pairs():
    g = from_edges(6, [(0, 3, 2), (1, 4, 7), (2, 5, 4), (0, 1, 1), (3, 4, 1)])
    labels = np.array([0, 0, 1, 2, 2, 1])
    q = quotient_graph(g, labels)
    # crossings: (0,3)->groups(0,2) w2 ; (1,4)->(0,2) w7 ; (2,5) internal to 1
    assert q.graph.num_edges == 1
    assert q.graph.edge_weight(0, 2) == 2.0
