"""Graph class: construction, validation, queries."""

import numpy as np
import pytest

from repro.graphs.csr import Graph
from repro.graphs.errors import InvalidGraphError, VertexError


def triangle():
    return Graph(3, np.array([0, 1, 2]), np.array([1, 2, 0]), np.array([1.0, 2.0, 3.0]))


def test_basic_counts():
    g = triangle()
    assert g.n == 3
    assert g.num_edges == 3
    assert np.array_equal(g.degree(), [2, 2, 2])


def test_edges_canonicalized_u_lt_v():
    g = Graph(3, np.array([2, 1]), np.array([0, 0]), np.array([5.0, 4.0]))
    u, v, w = g.edges()
    assert np.all(u < v)
    assert set(zip(u.tolist(), v.tolist())) == {(0, 1), (0, 2)}


def test_neighbors_and_weights():
    g = triangle()
    nbrs, ws = g.neighbors(0)
    assert set(nbrs.tolist()) == {1, 2}
    assert g.edge_weight(0, 1) == 1.0
    assert g.edge_weight(1, 0) == 1.0  # symmetric


def test_missing_edge_is_infinite():
    g = Graph(3, np.array([0]), np.array([1]), np.array([1.0]))
    assert g.edge_weight(0, 2) == float("inf")
    assert not g.has_edge(0, 2)
    assert g.has_edge(0, 1)


def test_self_loop_rejected():
    with pytest.raises(InvalidGraphError):
        Graph(2, np.array([1]), np.array([1]), np.array([1.0]))


def test_duplicate_edge_rejected():
    with pytest.raises(InvalidGraphError):
        Graph(2, np.array([0, 1]), np.array([1, 0]), np.array([1.0, 2.0]))


def test_nonpositive_weight_rejected():
    with pytest.raises(InvalidGraphError):
        Graph(2, np.array([0]), np.array([1]), np.array([0.0]))
    with pytest.raises(InvalidGraphError):
        Graph(2, np.array([0]), np.array([1]), np.array([-1.0]))
    with pytest.raises(InvalidGraphError):
        Graph(2, np.array([0]), np.array([1]), np.array([np.inf]))


def test_vertex_id_out_of_range():
    with pytest.raises(InvalidGraphError):
        Graph(2, np.array([0]), np.array([2]), np.array([1.0]))
    with pytest.raises(InvalidGraphError):
        Graph(2, np.array([-1]), np.array([1]), np.array([1.0]))


def test_empty_graph():
    g = Graph(5, np.zeros(0), np.zeros(0), np.zeros(0))
    assert g.num_edges == 0
    assert np.array_equal(g.degree(), np.zeros(5, dtype=np.int64))


def test_arcs_both_directions():
    g = triangle()
    tails, heads, w = g.arcs()
    assert tails.size == 6
    pairs = set(zip(tails.tolist(), heads.tolist()))
    assert (0, 1) in pairs and (1, 0) in pairs


def test_weight_extrema():
    g = triangle()
    assert g.min_weight() == 1.0
    assert g.max_weight() == 3.0
    assert g.total_weight() == 6.0


def test_vertex_bounds_checked():
    g = triangle()
    with pytest.raises(VertexError):
        g.neighbors(3)
    with pytest.raises(VertexError):
        g.degree(-1)


def test_immutability():
    g = triangle()
    with pytest.raises(ValueError):
        g.edge_w[0] = 99.0
    with pytest.raises(ValueError):
        g.indptr[0] = 1


def test_arc_edge_id_maps_back():
    g = triangle()
    tails, heads, w = g.arcs()
    eu, ev, ew = g.edges()
    for t, h, ww, eid in zip(tails, heads, w, g.arc_edge_id):
        assert {int(t), int(h)} == {int(eu[eid]), int(ev[eid])}
        assert ww == ew[eid]
