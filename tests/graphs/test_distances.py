"""Distance oracles: Dijkstra, hop-limited Bellman–Ford, path helpers."""

import numpy as np
import pytest

from repro.graphs.build import from_edges
from repro.graphs.distances import (
    all_pairs_dijkstra,
    dijkstra,
    dijkstra_with_parents,
    hop_limited_distances,
    path_weight,
    reconstruct_path,
)
from repro.graphs.errors import VertexError
from repro.graphs.generators import erdos_renyi, path_graph


def diamond():
    # 0-1 (1), 0-2 (4), 1-2 (1), 2-3 (1), 1-3 (5)
    return from_edges(4, [(0, 1, 1), (0, 2, 4), (1, 2, 1), (2, 3, 1), (1, 3, 5)])


def test_dijkstra_exact():
    d = dijkstra(diamond(), 0)
    assert np.allclose(d, [0, 1, 2, 3])


def test_dijkstra_unreachable_inf():
    g = from_edges(3, [(0, 1, 1.0)])
    d = dijkstra(g, 0)
    assert d[2] == float("inf")


def test_dijkstra_source_out_of_range():
    with pytest.raises(VertexError):
        dijkstra(diamond(), 4)


def test_parents_form_shortest_path_tree():
    g = diamond()
    dist, parent = dijkstra_with_parents(g, 0)
    assert parent[0] == 0
    for v in range(1, 4):
        p = int(parent[v])
        assert np.isclose(dist[v], dist[p] + g.edge_weight(p, v))


def test_all_pairs_symmetric():
    g = diamond()
    mat = all_pairs_dijkstra(g)
    assert np.allclose(mat, mat.T)
    assert np.allclose(np.diag(mat), 0)


def test_hop_limited_monotone_in_hops():
    g = path_graph(10, w_range=(1.0, 2.0), seed=1)
    d_exact = dijkstra(g, 0)
    prev = hop_limited_distances(g, 0, 0)
    assert prev[0] == 0 and np.all(~np.isfinite(prev[1:]))
    for h in range(1, 10):
        cur = hop_limited_distances(g, 0, h)
        assert np.all(cur <= prev + 1e-12)
        prev = cur
    assert np.allclose(prev, d_exact)


def test_hop_limited_equals_exact_at_n_minus_1():
    g = erdos_renyi(25, 0.15, seed=4)
    for s in (0, 7):
        assert np.allclose(hop_limited_distances(g, s, 24), dijkstra(g, s))


def test_hop_limited_semantics_picks_fewest_hop_tradeoff():
    # 0-1-2 each weight 1, plus direct 0-2 weight 5
    g = from_edges(3, [(0, 1, 1), (1, 2, 1), (0, 2, 5)])
    assert hop_limited_distances(g, 0, 1)[2] == 5.0
    assert hop_limited_distances(g, 0, 2)[2] == 2.0


def test_hop_limited_rejects_negative_hops():
    with pytest.raises(VertexError):
        hop_limited_distances(diamond(), 0, -1)


def test_path_weight():
    g = diamond()
    assert path_weight(g, [0, 1, 2, 3]) == 3.0
    assert path_weight(g, [0]) == 0.0
    assert path_weight(g, [0, 3]) == float("inf")  # no direct edge


def test_reconstruct_path():
    g = diamond()
    _, parent = dijkstra_with_parents(g, 0)
    p = reconstruct_path(parent, 0, 3)
    assert p[0] == 0 and p[-1] == 3
    assert path_weight(g, p) == dijkstra(g, 0)[3]


def test_reconstruct_path_unreachable():
    g = from_edges(3, [(0, 1, 1.0)])
    _, parent = dijkstra_with_parents(g, 0)
    assert reconstruct_path(parent, 0, 2) == []
