"""Workload generators: shape, determinism, connectivity guarantees."""

import numpy as np
import pytest

from repro.graphs.errors import InvalidGraphError
from repro.graphs.generators import (
    caterpillar,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_graph,
    layered_hop_graph,
    path_graph,
    preferential_attachment,
    random_geometric,
    star_graph,
    wide_weight_graph,
)
from repro.graphs.properties import hop_diameter, is_connected, weight_aspect_ratio


def test_path_graph_structure():
    g = path_graph(5)
    assert g.n == 5 and g.num_edges == 4
    assert g.has_edge(0, 1) and g.has_edge(3, 4) and not g.has_edge(0, 2)


def test_path_graph_random_weights_seeded():
    a = path_graph(10, w_range=(1.0, 5.0), seed=3)
    b = path_graph(10, w_range=(1.0, 5.0), seed=3)
    assert np.array_equal(a.edge_w, b.edge_w)


def test_cycle_graph():
    g = cycle_graph(4)
    assert g.num_edges == 4
    assert all(g.degree(v) == 2 for v in range(4))
    with pytest.raises(InvalidGraphError):
        cycle_graph(2)


def test_star_graph():
    g = star_graph(6)
    assert g.degree(0) == 5
    assert all(g.degree(v) == 1 for v in range(1, 6))


def test_complete_graph():
    g = complete_graph(5, seed=1)
    assert g.num_edges == 10
    assert is_connected(g)


def test_grid_graph_counts():
    g = grid_graph(3, 4)
    assert g.n == 12
    assert g.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical
    assert is_connected(g)


def test_erdos_renyi_connected_flag():
    g = erdos_renyi(50, 0.01, seed=5, ensure_connected=True)
    assert is_connected(g)
    g2 = erdos_renyi(50, 0.0, seed=5, ensure_connected=False)
    assert g2.num_edges == 0


def test_erdos_renyi_determinism():
    a = erdos_renyi(30, 0.2, seed=9)
    b = erdos_renyi(30, 0.2, seed=9)
    assert a.num_edges == b.num_edges
    assert np.array_equal(a.edge_u, b.edge_u)
    assert np.array_equal(a.edge_w, b.edge_w)


def test_erdos_renyi_rejects_bad_p():
    with pytest.raises(InvalidGraphError):
        erdos_renyi(5, 1.5)


def test_random_geometric_connected():
    g = random_geometric(40, 0.15, seed=2)
    assert is_connected(g)
    assert g.min_weight() > 0


def test_preferential_attachment_connected_powerlaw_ish():
    g = preferential_attachment(100, 2, seed=3)
    assert is_connected(g)
    degs = np.sort(g.degree())[::-1]
    assert degs[0] >= 3 * np.median(degs)  # heavy head


def test_caterpillar():
    g = caterpillar(5, 2)
    assert g.n == 15
    assert g.num_edges == 14  # a tree
    assert is_connected(g)


def test_layered_hop_graph_deep():
    g = layered_hop_graph(12, 3, seed=7)
    assert g.n == 36
    assert is_connected(g)
    assert hop_diameter(g) >= 11  # at least layers-1 hops across


def test_wide_weight_graph_spans_aspect():
    g = wide_weight_graph(40, 1e5, seed=8)
    assert is_connected(g)
    assert weight_aspect_ratio(g) > 1e3


def test_generator_input_validation():
    with pytest.raises(InvalidGraphError):
        path_graph(0)
    with pytest.raises(InvalidGraphError):
        grid_graph(0, 3)
    with pytest.raises(InvalidGraphError):
        layered_hop_graph(1, 3)
    with pytest.raises(InvalidGraphError):
        wide_weight_graph(10, 0.5)
    with pytest.raises(InvalidGraphError):
        preferential_attachment(1, 1)
