"""The additional generator families (hypercube, regular, trees, circulant)."""

import numpy as np
import pytest

from repro.graphs.errors import InvalidGraphError
from repro.graphs.generators import (
    binary_tree,
    circulant_graph,
    hypercube_graph,
    random_regular,
)
from repro.graphs.properties import hop_diameter, is_connected


def test_hypercube_structure():
    g = hypercube_graph(4)
    assert g.n == 16
    assert g.num_edges == 4 * 16 // 2
    assert np.all(g.degree() == 4)
    assert hop_diameter(g) == 4  # = dim


def test_hypercube_neighbors_differ_in_one_bit():
    g = hypercube_graph(3)
    for u, v, _ in zip(*g.edges()):
        x = int(u) ^ int(v)
        assert x and (x & (x - 1)) == 0  # power of two


def test_hypercube_validation():
    with pytest.raises(InvalidGraphError):
        hypercube_graph(0)


def test_random_regular_degree_concentrated():
    g = random_regular(60, 4, seed=1)
    degs = g.degree()
    assert degs.max() <= 4
    assert degs.mean() > 3.0  # pairing drops only a few stubs


def test_random_regular_expander_like_diameter():
    g = random_regular(128, 4, seed=2)
    if is_connected(g):
        assert hop_diameter(g) <= 12


def test_random_regular_validation():
    with pytest.raises(InvalidGraphError):
        random_regular(10, 1)
    with pytest.raises(InvalidGraphError):
        random_regular(5, 3)  # odd stub count
    with pytest.raises(InvalidGraphError):
        random_regular(4, 4)


def test_binary_tree_structure():
    g = binary_tree(3)
    assert g.n == 15
    assert g.num_edges == 14
    assert is_connected(g)
    assert g.degree(0) == 2  # root
    leaves = [v for v in range(g.n) if g.degree(v) == 1]
    assert len(leaves) == 8


def test_binary_tree_validation():
    with pytest.raises(InvalidGraphError):
        binary_tree(0)


def test_circulant_structure():
    g = circulant_graph(10, offsets=(1, 3))
    assert g.n == 10
    assert np.all(g.degree() == 4)
    assert is_connected(g)


def test_circulant_validation():
    with pytest.raises(InvalidGraphError):
        circulant_graph(2)
    with pytest.raises(InvalidGraphError):
        circulant_graph(8, offsets=())
    with pytest.raises(InvalidGraphError):
        circulant_graph(8, offsets=(8,))


def test_new_families_work_with_hopsets():
    from repro.hopsets.multi_scale import build_hopset
    from repro.hopsets.params import HopsetParams
    from repro.hopsets.verification import certify

    for g in (hypercube_graph(4, seed=1, w_range=(1.0, 2.0)),
              binary_tree(4, seed=2, w_range=(1.0, 2.0)),
              circulant_graph(20, offsets=(1, 4))):
        H, _ = build_hopset(g, HopsetParams(epsilon=0.25, beta=8))
        cert = certify(g, H, beta=17, epsilon=0.25)
        assert cert.safe and cert.holds
