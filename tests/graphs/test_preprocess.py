"""Zero-weight edge contraction (footnote 1)."""

import numpy as np
import pytest

from repro.graphs.distances import dijkstra
from repro.graphs.errors import InvalidGraphError
from repro.graphs.preprocess import contract_zero_edges, lift_distances
from repro.pram.machine import PRAM


def arrays(edges):
    u = np.array([e[0] for e in edges], dtype=np.int64)
    v = np.array([e[1] for e in edges], dtype=np.int64)
    w = np.array([e[2] for e in edges], dtype=np.float64)
    return u, v, w


def test_no_zero_edges_is_identity_shape():
    zc = contract_zero_edges(PRAM(), 3, *arrays([(0, 1, 1.0), (1, 2, 2.0)]))
    assert not zc.contracted
    assert zc.graph.n == 3
    assert np.array_equal(zc.node_of, [0, 1, 2])


def test_zero_class_collapses():
    # 0 =0= 1 =0= 2, plus 2 -(3.0)- 3
    zc = contract_zero_edges(
        PRAM(), 4, *arrays([(0, 1, 0.0), (1, 2, 0.0), (2, 3, 3.0)])
    )
    assert zc.contracted
    assert zc.graph.n == 2
    assert zc.node_of[0] == zc.node_of[1] == zc.node_of[2]
    assert zc.node_of[3] != zc.node_of[0]
    assert zc.graph.edge_weight(int(zc.node_of[0]), int(zc.node_of[3])) == 3.0


def test_intra_class_positive_edges_vanish():
    # 0 =0= 1 and also 0 -(5.0)- 1: the positive edge is internal
    zc = contract_zero_edges(PRAM(), 2, *arrays([(0, 1, 0.0), (0, 1, 5.0)]))
    assert zc.graph.n == 1 and zc.graph.num_edges == 0


def test_parallel_positive_edges_keep_min():
    zc = contract_zero_edges(
        PRAM(), 4, *arrays([(0, 1, 0.0), (0, 2, 4.0), (1, 2, 1.5)])
    )
    a, b = int(zc.node_of[0]), int(zc.node_of[2])
    assert zc.graph.edge_weight(a, b) == 1.5


def test_lift_distances_roundtrip():
    edges = [(0, 1, 0.0), (1, 2, 2.0), (2, 3, 0.0), (3, 4, 1.0)]
    zc = contract_zero_edges(PRAM(), 5, *arrays(edges))
    d_c = dijkstra(zc.graph, int(zc.node_of[0]))
    lifted = lift_distances(zc, d_c)
    # ground truth on the original graph with zeros treated as weight->0+
    assert np.allclose(lifted, [0.0, 0.0, 2.0, 2.0, 3.0])


def test_negative_weight_rejected():
    with pytest.raises(InvalidGraphError):
        contract_zero_edges(PRAM(), 2, *arrays([(0, 1, -1.0)]))


def test_self_loop_rejected():
    with pytest.raises(InvalidGraphError):
        contract_zero_edges(PRAM(), 2, *arrays([(1, 1, 1.0)]))


def test_lift_shape_checked():
    zc = contract_zero_edges(PRAM(), 3, *arrays([(0, 1, 1.0)]))
    with pytest.raises(InvalidGraphError):
        lift_distances(zc, np.zeros(99))


def test_representatives_are_min_ids():
    zc = contract_zero_edges(PRAM(), 5, *arrays([(3, 4, 0.0), (1, 2, 0.0)]))
    assert np.array_equal(zc.representative, [0, 1, 3])


def test_end_to_end_with_hopset():
    """The paper's pipeline: contract zeros, build the hopset, lift."""
    from repro.hopsets.multi_scale import build_hopset
    from repro.hopsets.params import HopsetParams
    from repro.sssp.sssp import approximate_sssp_with_hopset

    edges = [(0, 1, 0.0)] + [(i, i + 1, float(i)) for i in range(1, 10)]
    zc = contract_zero_edges(PRAM(), 11, *arrays(edges))
    H, _ = build_hopset(zc.graph, HopsetParams(beta=6))
    res = approximate_sssp_with_hopset(zc.graph, H, int(zc.node_of[0]))
    lifted = lift_distances(zc, res.dist)
    assert lifted[1] == 0.0  # zero-merged with the source
    assert np.isfinite(lifted).all()
