"""Graph statistics: aspect ratios, hop diameter, connectivity."""

import numpy as np
import pytest

from repro.graphs.build import from_edges
from repro.graphs.errors import InvalidGraphError
from repro.graphs.generators import cycle_graph, path_graph, star_graph
from repro.graphs.properties import (
    aspect_ratio_bound,
    exact_aspect_ratio,
    hop_diameter,
    is_connected,
    weight_aspect_ratio,
    weighted_diameter_upper_bound,
)


def test_weight_aspect_ratio():
    g = from_edges(3, [(0, 1, 1.0), (1, 2, 10.0)])
    assert weight_aspect_ratio(g) == 10.0


def test_aspect_ratio_bound_dominates_exact():
    g = path_graph(8, w_range=(1.0, 3.0), seed=1)
    assert aspect_ratio_bound(g) >= exact_aspect_ratio(g)


def test_exact_aspect_ratio_path():
    g = path_graph(5, weight=2.0)
    # min distance 2, max distance 8
    assert exact_aspect_ratio(g) == 4.0


def test_exact_aspect_ratio_no_pairs():
    g = from_edges(3, [])
    with pytest.raises(InvalidGraphError):
        exact_aspect_ratio(g)


def test_is_connected():
    assert is_connected(path_graph(5))
    assert not is_connected(from_edges(3, [(0, 1, 1.0)]))
    assert is_connected(from_edges(1, []))


def test_hop_diameter_path_and_star():
    assert hop_diameter(path_graph(6)) == 5
    assert hop_diameter(star_graph(10)) == 2
    assert hop_diameter(cycle_graph(8)) == 4


def test_hop_diameter_ignores_weights():
    heavy = from_edges(3, [(0, 1, 100.0), (1, 2, 100.0)])
    assert hop_diameter(heavy) == 2


def test_weighted_diameter_upper_bound():
    g = path_graph(4, weight=2.0)
    assert weighted_diameter_upper_bound(g) == 6.0
    assert weighted_diameter_upper_bound(from_edges(3, [])) == 0.0
