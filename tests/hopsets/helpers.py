"""Brute-force oracles for the hopset tests.

These recompute the paper's virtual graph G̃ᵢ definitions from scratch
(all-pairs hop-limited distances, cluster minima, BFS in the virtual graph)
so the production code in ``repro.hopsets`` is checked against an
independent implementation.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import Graph
from repro.graphs.distances import hop_limited_distances
from repro.hopsets.clusters import Partition


def hop_limited_matrix(graph: Graph, hops: int) -> np.ndarray:
    """n × n matrix of ``hops``-bounded distances."""
    return np.stack([hop_limited_distances(graph, s, hops) for s in range(graph.n)])


def cluster_distance_matrix(
    graph: Graph, partition: Partition, hops: int
) -> np.ndarray:
    """(2β+1)-hop cluster-to-cluster distances: min over member pairs."""
    vmat = hop_limited_matrix(graph, hops)
    ncl = partition.num_clusters
    out = np.full((ncl, ncl), np.inf)
    members = partition.members_by_cluster()
    for a in range(ncl):
        for b in range(ncl):
            ma, mb = members[a], members[b]
            if ma.size and mb.size:
                out[a, b] = vmat[np.ix_(ma, mb)].min()
    return out


def virtual_adjacency(
    graph: Graph, partition: Partition, threshold: float, hops: int
) -> np.ndarray:
    """Boolean adjacency of G̃ᵢ (diagonal False)."""
    cmat = cluster_distance_matrix(graph, partition, hops)
    adj = cmat <= threshold + 1e-9
    np.fill_diagonal(adj, False)
    return adj


def virtual_bfs_levels(adj: np.ndarray, sources: np.ndarray) -> np.ndarray:
    """Unweighted BFS levels in G̃ᵢ from a source mask; -1 = unreached."""
    ncl = adj.shape[0]
    level = np.full(ncl, -1, dtype=np.int64)
    frontier = np.flatnonzero(sources)
    level[frontier] = 0
    d = 0
    while frontier.size:
        d += 1
        nxt = []
        for c in frontier:
            for o in np.flatnonzero(adj[c]):
                if level[o] < 0:
                    level[o] = d
                    nxt.append(o)
        frontier = np.array(nxt, dtype=np.int64)
    return level


def pairwise_virtual_distances(adj: np.ndarray) -> np.ndarray:
    """All-pairs unweighted distances in G̃ᵢ (-1 = unreachable)."""
    ncl = adj.shape[0]
    out = np.full((ncl, ncl), -1, dtype=np.int64)
    for s in range(ncl):
        src = np.zeros(ncl, dtype=bool)
        src[s] = True
        out[s] = virtual_bfs_levels(adj, src)
    return out
