"""The sampled certifier (scalable companion to the all-pairs one)."""

import numpy as np

from repro.graphs.generators import erdos_renyi, path_graph
from repro.hopsets.hopset import INTERCONNECT, Hopset, HopsetEdge
from repro.hopsets.multi_scale import build_hopset
from repro.hopsets.params import HopsetParams
from repro.hopsets.verification import certify, certify_sampled


def test_sampled_agrees_with_full_when_sampling_everything():
    g = erdos_renyi(20, 0.2, seed=1201, w_range=(1.0, 3.0))
    H, _ = build_hopset(g, HopsetParams(epsilon=0.25, beta=8))
    full = certify(g, H, beta=17, epsilon=0.25)
    sampled = certify_sampled(g, H, beta=17, epsilon=0.25, num_sources=g.n)
    assert sampled.safe == full.safe
    assert sampled.holds == full.holds
    assert sampled.max_stretch >= full.max_stretch - 1e-9  # sees each pair twice


def test_sampled_detects_unsafe_hopsets():
    g = path_graph(10, weight=2.0)
    bad = Hopset(n=10)
    bad.add([HopsetEdge(0, 9, 0.5, 2, 0, INTERCONNECT)])
    cert = certify_sampled(g, bad, beta=9, epsilon=0.5, num_sources=10)
    assert not cert.safe


def test_sampled_deterministic_per_seed():
    g = erdos_renyi(30, 0.15, seed=1202)
    H, _ = build_hopset(g, HopsetParams(beta=6))
    a = certify_sampled(g, H, 13, 0.5, num_sources=5, seed=3)
    b = certify_sampled(g, H, 13, 0.5, num_sources=5, seed=3)
    assert a == b


def test_sampled_scales_to_larger_graphs_quickly():
    g = erdos_renyi(200, 0.03, seed=1203, w_range=(1.0, 4.0))
    H, _ = build_hopset(g, HopsetParams(epsilon=0.25, beta=8))
    cert = certify_sampled(g, H, beta=17, epsilon=0.25, num_sources=6)
    assert cert.safe
    assert cert.pairs_checked <= 6 * g.n
    assert np.isfinite(cert.max_stretch)


def test_sampled_empty_graph():
    from repro.graphs.build import from_edges

    g = from_edges(3, [])
    cert = certify_sampled(g, Hopset(n=3), beta=2, epsilon=0.1)
    assert cert.holds and cert.pairs_checked == 0
