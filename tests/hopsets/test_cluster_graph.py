"""Algorithm 2 explorations vs. brute-force virtual-graph oracles."""

import numpy as np
import pytest

from repro.graphs.build import from_edges
from repro.graphs.generators import erdos_renyi, path_graph
from repro.hopsets.cluster_graph import bfs_from_clusters, neighbor_tables
from repro.hopsets.clusters import ClusterMemory, Partition
from repro.hopsets.errors import HopsetError
from repro.pram.machine import PRAM

from tests.hopsets.helpers import (
    cluster_distance_matrix,
    virtual_adjacency,
    virtual_bfs_levels,
)


def grouped_partition(n: int, group: int) -> Partition:
    """Clusters of consecutive vertices; center = smallest member."""
    cluster_of = np.arange(n) // group
    centers = np.arange(0, n, group, dtype=np.int64)
    return Partition(cluster_of=cluster_of.astype(np.int64), centers=centers)


# ---------------------------------------------------------------------------
# neighbor_tables (the d=1 detection variant, Lemma A.3)
# ---------------------------------------------------------------------------


def test_singleton_partition_distances_match_hop_limited():
    g = erdos_renyi(20, 0.2, seed=1, w_range=(1.0, 3.0))
    part = Partition.singletons(g.n)
    hops = 4
    threshold = 6.0
    tables = neighbor_tables(PRAM(), g, part, threshold, hops, x=g.n)
    oracle = cluster_distance_matrix(g, part, hops)
    got = np.full((g.n, g.n), np.inf)
    for r in range(tables.cluster.size):
        got[int(tables.cluster[r]), int(tables.src[r])] = tables.dist[r]
    expect = np.where(oracle <= threshold + 1e-9, oracle, np.inf)
    assert np.allclose(got, expect)


def test_grouped_partition_cluster_distances():
    g = path_graph(12, weight=1.0)
    part = grouped_partition(12, 3)
    hops = 5
    threshold = 4.0
    tables = neighbor_tables(PRAM(), g, part, threshold, hops, x=part.num_clusters)
    oracle = cluster_distance_matrix(g, part, hops)
    for r in range(tables.cluster.size):
        c, s = int(tables.cluster[r]), int(tables.src[r])
        assert tables.dist[r] == pytest.approx(oracle[c, s])


def test_self_entry_present_at_distance_zero():
    g = path_graph(6)
    part = grouped_partition(6, 2)
    tables = neighbor_tables(PRAM(), g, part, threshold=10.0, hops=3, x=5)
    for c in range(part.num_clusters):
        rows = tables.rows_of(c)
        pairs = list(zip(tables.src[rows].tolist(), tables.dist[rows].tolist()))
        assert (c, 0.0) in pairs


def test_popularity_counts_lemma_a3():
    """A cluster is popular iff its table holds x = deg+1 records."""
    g = path_graph(9, weight=1.0)
    part = Partition.singletons(9)
    deg = 2
    tables = neighbor_tables(PRAM(), g, part, threshold=1.0, hops=3, x=deg + 1)
    counts = tables.counts()
    # interior vertices have 2 unit-distance neighbors → popular (3 records);
    # endpoints have 1 → unpopular (2 records)
    assert counts[0] == 2 and counts[8] == 2
    assert np.all(counts[1:8] == 3)


def test_x_truncation_keeps_closest_sources():
    # star: center 0 with leaves at distinct distances
    g = from_edges(4, [(0, 1, 1.0), (0, 2, 2.0), (0, 3, 3.0)])
    part = Partition.singletons(4)
    tables = neighbor_tables(PRAM(), g, part, threshold=10.0, hops=2, x=2)
    rows = tables.rows_of(0)
    srcs = tables.src[rows].tolist()
    assert srcs == [0, 1]  # itself + the closest leaf only


def test_member_and_seed_realize_the_distance():
    g = path_graph(10, w_range=(1.0, 2.0), seed=3)
    part = grouped_partition(10, 5)
    tables = neighbor_tables(PRAM(), g, part, threshold=20.0, hops=9, x=2)
    for r in range(tables.cluster.size):
        c, s = int(tables.cluster[r]), int(tables.src[r])
        if c == s:
            continue
        u, z = int(tables.member[r]), int(tables.seed[r])
        assert part.cluster_of[u] == c
        assert part.cluster_of[z] == s
        # boundary members 4 and 5 realize the inter-cluster distance
        assert {u, z} == {4, 5}


def test_threshold_pruning():
    g = path_graph(5, weight=2.0)
    part = Partition.singletons(5)
    tables = neighbor_tables(PRAM(), g, part, threshold=3.0, hops=4, x=5)
    for r in range(tables.cluster.size):
        assert tables.dist[r] <= 3.0 + 1e-9


def test_hop_budget_limits_reach():
    g = path_graph(6, weight=1.0)
    part = Partition.singletons(6)
    tables = neighbor_tables(PRAM(), g, part, threshold=10.0, hops=2, x=6)
    rows = tables.rows_of(0)
    reach = set(tables.src[rows].tolist())
    assert reach == {0, 1, 2}  # ≤ 2 hops away


def test_record_paths_are_real_graph_walks():
    g = erdos_renyi(15, 0.25, seed=7, w_range=(1.0, 2.0))
    part = grouped_partition(15, 5)
    tables = neighbor_tables(
        PRAM(), g, part, threshold=8.0, hops=4, x=3, record_paths=True
    )
    assert tables.paths is not None
    for r in range(tables.cluster.size):
        path = tables.paths[r]
        assert path[0] == int(tables.seed[r])
        assert path[-1] == int(tables.member[r])
        total = 0.0
        for a, b in zip(path, path[1:]):
            w = g.edge_weight(int(a), int(b))
            assert np.isfinite(w)
            total += w
        assert total <= tables.dist[r] + 1e-9


def test_invalid_x_rejected():
    g = path_graph(4)
    with pytest.raises(HopsetError):
        neighbor_tables(PRAM(), g, Partition.singletons(4), 1.0, 2, x=0)


# ---------------------------------------------------------------------------
# bfs_from_clusters (the x=1 BFS variant, Lemma A.4)
# ---------------------------------------------------------------------------


def test_bfs_pulses_match_virtual_levels():
    g = erdos_renyi(18, 0.15, seed=11, w_range=(1.0, 2.0))
    part = Partition.singletons(g.n)
    threshold, hops = 2.5, 3
    sources = np.zeros(g.n, dtype=bool)
    sources[[0, 7]] = True
    res = bfs_from_clusters(PRAM(), g, part, sources, threshold, hops, max_pulses=g.n)
    adj = virtual_adjacency(g, part, threshold, hops)
    levels = virtual_bfs_levels(adj, sources)
    assert np.array_equal(res.pulse, levels)


def test_bfs_detection_capped_by_max_pulses():
    g = path_graph(8, weight=1.0)
    part = Partition.singletons(8)
    sources = np.zeros(8, dtype=bool)
    sources[0] = True
    res = bfs_from_clusters(PRAM(), g, part, sources, threshold=1.0, hops=1, max_pulses=3)
    assert res.pulse[3] == 3
    assert res.pulse[4] == -1  # beyond the pulse budget


def test_bfs_origin_is_nearest_source_deterministic():
    g = path_graph(7, weight=1.0)
    part = Partition.singletons(7)
    sources = np.zeros(7, dtype=bool)
    sources[[0, 6]] = True
    res = bfs_from_clusters(PRAM(), g, part, sources, threshold=1.0, hops=1, max_pulses=7)
    assert res.origin[1] == 0 and res.origin[2] == 0
    assert res.origin[5] == 6 and res.origin[4] == 6
    # the exact middle (pulse ties) resolves deterministically to min id
    assert res.origin[3] == 0


def test_bfs_acc_weight_is_realized_center_path_weight():
    g = path_graph(6, w_range=(1.0, 3.0), seed=13)
    part = Partition.singletons(6)
    memory = ClusterMemory(6)
    sources = np.zeros(6, dtype=bool)
    sources[0] = True
    res = bfs_from_clusters(
        PRAM(), g, part, sources, threshold=10.0, hops=1, max_pulses=6, memory=memory
    )
    # singleton clusters, 1-hop pulses: acc = sum of edge weights along path
    from repro.graphs.distances import dijkstra

    exact = dijkstra(g, 0)
    for v in range(1, 6):
        assert res.acc_weight[v] == pytest.approx(exact[v])


def test_bfs_pred_chain_leads_to_origin():
    g = erdos_renyi(16, 0.2, seed=17)
    part = Partition.singletons(g.n)
    sources = np.zeros(g.n, dtype=bool)
    sources[2] = True
    res = bfs_from_clusters(PRAM(), g, part, sources, threshold=3.0, hops=2, max_pulses=g.n)
    for c in np.flatnonzero(res.detected()):
        cur = c
        for _ in range(g.n + 1):
            if res.pred[cur] < 0:
                break
            cur = int(res.pred[cur])
        assert cur == 2


def test_bfs_records_segment_paths():
    g = path_graph(5, weight=1.0)
    part = Partition.singletons(5)
    sources = np.zeros(5, dtype=bool)
    sources[0] = True
    res = bfs_from_clusters(
        PRAM(), g, part, sources, threshold=2.0, hops=2, max_pulses=5,
        record_paths=True,
    )
    assert res.seg_paths is not None
    for c in np.flatnonzero(res.detected() & (res.pulse > 0)):
        seg = res.seg_paths[int(c)]
        assert seg is not None
        assert seg[0] == res.seg_seed[c] and seg[-1] == res.seg_member[c]


def test_bfs_source_mask_shape_checked():
    g = path_graph(4)
    with pytest.raises(HopsetError):
        bfs_from_clusters(
            PRAM(), g, Partition.singletons(4), np.zeros(3, dtype=bool), 1.0, 1, 1
        )
