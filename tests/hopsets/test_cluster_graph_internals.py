"""White-box tests of the Algorithm 2/3 engine internals."""

import numpy as np

from repro.graphs.build import from_edges
from repro.graphs.generators import path_graph
from repro.hopsets.cluster_graph import EntryTable, _dedup_and_prune, _propagate
from repro.pram.machine import PRAM


def table(verts, srcs, dists, seeds=None, paths=None):
    v = np.array(verts, dtype=np.int64)
    return EntryTable(
        vert=v,
        src=np.array(srcs, dtype=np.int64),
        dist=np.array(dists, dtype=np.float64),
        seed=np.array(seeds if seeds is not None else verts, dtype=np.int64),
        paths=paths,
    )


def test_dedup_keeps_min_distance_per_vertex_source():
    t = table([0, 0, 0], [5, 5, 6], [3.0, 1.0, 2.0])
    out = _dedup_and_prune(t, x=10, pram=PRAM())
    rows = sorted(zip(out.src.tolist(), out.dist.tolist()))
    assert rows == [(5, 1.0), (6, 2.0)]


def test_prune_keeps_x_closest_sources():
    t = table([0, 0, 0, 0], [1, 2, 3, 4], [4.0, 1.0, 3.0, 2.0])
    out = _dedup_and_prune(t, x=2, pram=PRAM())
    assert sorted(out.src.tolist()) == [2, 4]  # the two closest


def test_prune_tie_breaks_by_source_id():
    t = table([0, 0], [9, 3], [1.0, 1.0])
    out = _dedup_and_prune(t, x=1, pram=PRAM())
    assert out.src.tolist() == [3]


def test_dedup_is_per_vertex():
    t = table([0, 1], [7, 7], [5.0, 6.0])
    out = _dedup_and_prune(t, x=1, pram=PRAM())
    assert out.size == 2  # same source at two vertices both survive


def test_dedup_preserves_paths_alignment():
    paths = [(0, 9), (0,), (1, 8)]
    t = table([0, 0, 1], [5, 5, 5], [3.0, 1.0, 2.0], paths=paths)
    out = _dedup_and_prune(t, x=10, pram=PRAM())
    # vertex 0 keeps the dist-1.0 entry whose path was (0,)
    m = {(int(v), float(d)): p for v, d, p in zip(out.vert, out.dist, out.paths)}
    assert m[(0, 1.0)] == (0,)
    assert m[(1, 2.0)] == (1, 8)


def test_propagate_respects_threshold():
    g = path_graph(5, weight=2.0)
    t = table([0], [0], [0.0])
    out = _propagate(PRAM(), g, t, rounds=10, threshold=3.0, x=5)
    assert set(out.vert.tolist()) == {0, 1}  # vertex 2 is at distance 4 > 3


def test_propagate_respects_hop_budget():
    g = path_graph(6, weight=1.0)
    t = table([0], [0], [0.0])
    out = _propagate(PRAM(), g, t, rounds=2, threshold=100.0, x=6)
    assert set(out.vert.tolist()) == {0, 1, 2}


def test_propagate_early_exit_charges_less():
    g = path_graph(4, weight=1.0)
    p1, p2 = PRAM(), PRAM()
    t1 = table([0], [0], [0.0])
    t2 = table([0], [0], [0.0])
    _propagate(p1, g, t1, rounds=3, threshold=100.0, x=4)
    _propagate(p2, g, t2, rounds=300, threshold=100.0, x=4)
    # converges after ~3 rounds either way
    assert p2.cost.depth <= 2 * p1.cost.depth + 20


def test_propagate_merges_multiple_sources():
    g = from_edges(3, [(0, 1, 1.0), (1, 2, 1.0)])
    t = table([0, 2], [0, 2], [0.0, 0.0])
    out = _propagate(PRAM(), g, t, rounds=3, threshold=10.0, x=2)
    mid = [(int(s), float(d)) for v, s, d in zip(out.vert, out.src, out.dist) if v == 1]
    assert sorted(mid) == [(0, 1.0), (2, 1.0)]


def test_empty_table_propagates_to_empty():
    g = path_graph(3)
    t = table([], [], [])
    out = _propagate(PRAM(), g, t, rounds=5, threshold=10.0, x=3)
    assert out.size == 0


def test_concat_path_mode_mismatch_rejected():
    import pytest

    from repro.hopsets.errors import HopsetError

    a = table([0], [0], [0.0], paths=[(0,)])
    b = table([1], [1], [0.0])
    with pytest.raises(HopsetError):
        EntryTable.concat(a, b)
