"""Partition state and cluster memory (CP/CD)."""

import numpy as np
import pytest

from repro.hopsets.clusters import ClusterMemory, Partition
from repro.hopsets.errors import HopsetError


def test_singletons():
    p = Partition.singletons(4)
    assert p.num_clusters == 4
    assert np.array_equal(p.cluster_of, np.arange(4))
    assert np.array_equal(p.centers, np.arange(4))
    p.validate()


def test_members_lookup():
    p = Partition(cluster_of=np.array([0, 1, 0, -1, 1]), centers=np.array([0, 1]))
    assert np.array_equal(p.members(0), [0, 2])
    assert np.array_equal(p.members(1), [1, 4])


def test_members_by_cluster_handles_unclustered():
    p = Partition(cluster_of=np.array([1, -1, 0, 1]), centers=np.array([2, 0]))
    by = p.members_by_cluster()
    assert np.array_equal(by[0], [2])
    assert np.array_equal(by[1], [0, 3])


def test_members_by_cluster_empty_cluster():
    p = Partition(cluster_of=np.array([-1, -1]), centers=np.zeros(0, dtype=np.int64))
    assert p.members_by_cluster() == []


def test_sizes():
    p = Partition(cluster_of=np.array([0, 0, 1, -1]), centers=np.array([0, 2]))
    assert np.array_equal(p.sizes(), [2, 1])


def test_validate_rejects_misplaced_center():
    p = Partition(cluster_of=np.array([1, 0]), centers=np.array([0, 1]))
    with pytest.raises(HopsetError):
        p.validate()


def test_cluster_memory_distances_only():
    m = ClusterMemory(3)
    assert np.array_equal(m.cd, np.zeros(3))
    m.absorb(np.array([0, 2]), extra_dist=5.0)
    assert np.array_equal(m.cd, [5.0, 0.0, 5.0])
    with pytest.raises(HopsetError):
        m.path(0)  # paths not recorded


def test_cluster_memory_paths():
    m = ClusterMemory(4, record_paths=True)
    assert m.path(2) == (2,)
    # vertex 0's cluster (center 0) joins a supercluster centered at 3 via 0-1-3
    m.absorb(np.array([0]), extra_dist=2.0, extra_path=(0, 1, 3))
    assert m.path(0) == (0, 1, 3)
    assert m.cd[0] == 2.0
    # a second absorb chains correctly: 3 → 2
    m.absorb(np.array([0]), extra_dist=1.0, extra_path=(3, 2))
    assert m.path(0) == (0, 1, 3, 2)
    assert m.cd[0] == 3.0


def test_absorb_requires_path_in_path_mode():
    m = ClusterMemory(2, record_paths=True)
    with pytest.raises(HopsetError):
        m.absorb(np.array([0]), extra_dist=1.0)


def test_reset_singletons():
    m = ClusterMemory(2, record_paths=True)
    m.absorb(np.array([0]), 1.0, (0, 1))
    m.reset_singletons()
    assert m.cd[0] == 0.0
    assert m.path(0) == (0,)
