"""Hopset container semantics."""

import numpy as np
import pytest

from repro.graphs.build import from_edges
from repro.hopsets.errors import HopsetError
from repro.hopsets.hopset import INTERCONNECT, SUPERCLUSTER, Hopset, HopsetEdge


def make_hopset():
    h = Hopset(n=5, beta=4, epsilon=0.25)
    h.add(
        [
            HopsetEdge(0, 2, 3.0, scale=2, phase=0, kind=SUPERCLUSTER),
            HopsetEdge(2, 4, 5.0, scale=3, phase=1, kind=INTERCONNECT),
            HopsetEdge(0, 2, 2.0, scale=3, phase=0, kind=INTERCONNECT),  # same pair
        ]
    )
    return h


def test_edge_validation():
    with pytest.raises(HopsetError):
        HopsetEdge(1, 1, 1.0, 0, 0, SUPERCLUSTER)
    with pytest.raises(HopsetError):
        HopsetEdge(0, 1, 0.0, 0, 0, SUPERCLUSTER)
    with pytest.raises(HopsetError):
        HopsetEdge(0, 1, 1.0, 0, 0, SUPERCLUSTER, path=(0, 2))  # wrong endpoint
    with pytest.raises(HopsetError):
        HopsetEdge(0, 1, 1.0, 0, 0, SUPERCLUSTER, path=(0,))  # too short


def test_size_counts_distinct_pairs():
    h = make_hopset()
    assert h.num_records == 3
    assert h.size() == 2  # (0,2) counted once


def test_scales_and_of_scale():
    h = make_hopset()
    assert h.scales() == [2, 3]
    assert len(h.of_scale(3)) == 2
    assert h.of_scale(7) == []


def test_union_graph_takes_min_weight():
    g = from_edges(5, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 10.0)])
    h = make_hopset()
    u = h.union_graph(g)
    assert u.edge_weight(0, 2) == 2.0   # min(10 graph, 3, 2 hopset)
    assert u.edge_weight(2, 4) == 5.0   # hopset-only edge
    assert u.edge_weight(0, 1) == 1.0


def test_union_graph_size_mismatch():
    g = from_edges(3, [(0, 1, 1.0)])
    with pytest.raises(HopsetError):
        make_hopset().union_graph(g)


def test_union_graph_up_to_scale():
    g = from_edges(5, [(0, 1, 1.0)])
    h = make_hopset()
    u2 = h.union_graph_up_to_scale(g, 2)
    assert u2.edge_weight(0, 2) == 3.0   # only the scale-2 record
    assert not u2.has_edge(2, 4)
    u1 = h.union_graph_up_to_scale(g, 1)
    assert u1.num_edges == g.num_edges   # no hopset edges below scale 2


def test_kind_counts():
    h = make_hopset()
    assert h.kind_counts() == {SUPERCLUSTER: 1, INTERCONNECT: 2}


def test_empty_hopset_union_is_base():
    g = from_edges(3, [(0, 1, 1.0)])
    h = Hopset(n=3)
    u = h.union_graph(g)
    assert u.num_edges == 1
    assert h.size() == 0 and h.scales() == []


def test_edge_arrays_roundtrip():
    h = make_hopset()
    u, v, w = h.edge_arrays()
    assert u.size == 3
    assert np.all(u < 5) and np.all(v < 5)
