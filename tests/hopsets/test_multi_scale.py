"""The Theorem 3.7 driver: multi-scale hopset build + certification."""

import numpy as np
import pytest

from repro.graphs.csr import Graph
from repro.graphs.generators import erdos_renyi, layered_hop_graph, path_graph
from repro.hopsets.multi_scale import build_hopset, scale_range
from repro.hopsets.params import HopsetParams
from repro.hopsets.verification import certify
from repro.pram.machine import PRAM


def test_scale_range_endpoints():
    g = path_graph(16, weight=1.0)  # diameter 15, total weight 15
    k0, lam = scale_range(g, beta=4)
    assert k0 == 2  # floor(log2 4)
    assert lam == 3  # ceil(log2 15) - 1
    empty = Graph(4, np.zeros(0), np.zeros(0), np.zeros(0))
    assert scale_range(empty, 4) == (0, -1)


def test_build_covers_all_scales_in_range():
    g = path_graph(30, w_range=(1.0, 2.0), seed=1)
    params = HopsetParams(beta=4)
    H, report = build_hopset(g, params)
    k0, lam = scale_range(g, 4)
    assert report.scales == list(range(k0, lam + 1))
    assert set(H.scales()) <= set(report.scales)


def test_eq1_certified_on_random_graph():
    g = erdos_renyi(36, 0.12, seed=2, w_range=(1.0, 3.0))
    params = HopsetParams(epsilon=0.25, beta=8)
    H, _ = build_hopset(g, params)
    cert = certify(g, H, beta=2 * 8 + 1, epsilon=0.25)
    assert cert.safe
    assert cert.holds, f"max stretch {cert.max_stretch}"


def test_eq1_certified_on_deep_graph():
    g = layered_hop_graph(10, 3, seed=3)
    params = HopsetParams(epsilon=0.25, beta=8)
    H, _ = build_hopset(g, params)
    cert = certify(g, H, beta=2 * 8 + 1, epsilon=0.25)
    assert cert.safe and cert.holds


def test_safety_invariant_always_holds_even_with_tiny_beta():
    """Any β gives a *valid* (never-shortening) hopset (DESIGN.md §1)."""
    g = path_graph(24, w_range=(1.0, 3.0), seed=4)
    for beta in (1, 2, 4):
        H, _ = build_hopset(g, HopsetParams(beta=beta))
        cert = certify(g, H, beta=beta, epsilon=10.0)
        assert cert.safe


def test_stretch_improves_with_beta():
    g = path_graph(40, w_range=(1.0, 3.0), seed=5)
    stretches = []
    for beta in (2, 4, 8):
        H, _ = build_hopset(g, HopsetParams(epsilon=0.25, beta=beta))
        cert = certify(g, H, beta=2 * beta + 1, epsilon=0.25)
        stretches.append(cert.max_stretch)
    assert stretches[-1] <= stretches[0]
    assert stretches[-1] < 1.5


def test_size_bound_eq10():
    """|H_k| <= n^{1+1/κ} per scale, so |H| <= ceil(log Λ)·n^{1+1/κ}."""
    g = erdos_renyi(48, 0.1, seed=6, w_range=(1.0, 4.0))
    params = HopsetParams(kappa=2, beta=6)
    H, report = build_hopset(g, params)
    per_scale_bound = g.n ** (1 + 1 / params.kappa)
    for k, count in report.per_scale_edges.items():
        assert count <= per_scale_bound
    assert H.size() <= len(report.scales) * per_scale_bound


def test_determinism_bitwise():
    g = erdos_renyi(32, 0.12, seed=7)
    params = HopsetParams(beta=6)
    h1, _ = build_hopset(g, params)
    h2, _ = build_hopset(g, params)
    e1 = [(e.u, e.v, e.weight, e.scale, e.phase, e.kind) for e in h1.edges]
    e2 = [(e.u, e.v, e.weight, e.scale, e.phase, e.kind) for e in h2.edges]
    assert e1 == e2


def test_weight_normalization_roundtrip():
    """Hopsets of G and of 10·G differ exactly by the weight factor."""
    g = erdos_renyi(24, 0.15, seed=8, w_range=(1.0, 2.0))
    from repro.graphs.build import reweighted

    g10 = reweighted(g, 10.0)
    h1, _ = build_hopset(g, HopsetParams(beta=6))
    h10, _ = build_hopset(g10, HopsetParams(beta=6))
    w1 = sorted(e.weight for e in h1.edges)
    w10 = sorted(e.weight for e in h10.edges)
    assert len(w1) == len(w10)
    assert np.allclose(np.array(w10), 10.0 * np.array(w1))


def test_work_and_depth_recorded():
    g = erdos_renyi(24, 0.15, seed=9)
    pram = PRAM()
    H, report = build_hopset(g, HopsetParams(beta=4), pram)
    assert report.work > 0 and report.depth > 0
    assert pram.cost.work == report.work
    assert H.meta["work"] == report.work


def test_trivial_graphs():
    empty = Graph(3, np.zeros(0), np.zeros(0), np.zeros(0))
    H, report = build_hopset(empty, HopsetParams(beta=4))
    assert H.num_records == 0 and report.scales == []
    single = Graph(1, np.zeros(0), np.zeros(0), np.zeros(0))
    H2, _ = build_hopset(single, HopsetParams(beta=4))
    assert H2.num_records == 0


def test_scale_epsilon_reduces_compounded_stretch_target():
    g = path_graph(20, w_range=(1.0, 2.0), seed=10)
    h_raw, _ = build_hopset(g, HopsetParams(epsilon=0.3, beta=6, scale_epsilon=False))
    h_scaled, _ = build_hopset(g, HopsetParams(epsilon=0.3, beta=6, scale_epsilon=True))
    assert h_scaled.meta["eps_compounded"] <= h_raw.meta["eps_compounded"]
    assert h_scaled.meta["eps_compounded"] <= 0.3 + 1e-9
