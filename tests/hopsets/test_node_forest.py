"""Laminar center selection over the nodes forest (Appendix C.3)."""

import numpy as np
import pytest

from repro.hopsets.errors import HopsetError
from repro.hopsets.node_forest import ScaleNodes, select_centers


def make_nodes(node_of, prev=None, scale=0):
    node_of = np.asarray(node_of, dtype=np.int64)
    members = [np.flatnonzero(node_of == j) for j in range(node_of.max() + 1)]
    return select_centers(scale, node_of, members, prev)


def test_base_scale_min_id_center_and_stars():
    nodes = make_nodes([0, 0, 1, 0, 1])
    assert nodes.centers[0] == 0
    assert nodes.centers[1] == 2
    assert np.array_equal(nodes.star_targets[0], [1, 3])
    assert np.array_equal(nodes.star_targets[1], [4])


def test_singleton_nodes_get_no_stars():
    nodes = make_nodes([0, 1, 2])
    assert all(t.size == 0 for t in nodes.star_targets)


def test_center_inherited_from_largest_subnode():
    prev = make_nodes([0, 0, 0, 1, 1, 2])  # sizes 3, 2, 1; centers 0, 3, 5
    merged = make_nodes([0, 0, 0, 0, 0, 1], prev=prev, scale=1)
    # node {0..4} = prev nodes 0 (size 3) and 1 (size 2): center from node 0
    assert merged.centers[0] == 0
    # star targets: members outside the winning sub-node
    assert np.array_equal(merged.star_targets[0], [3, 4])
    # singleton node {5} keeps its center, no new stars
    assert merged.centers[1] == 5
    assert merged.star_targets[1].size == 0


def test_tie_broken_by_smallest_center_id():
    prev = make_nodes([0, 0, 1, 1])  # two size-2 nodes, centers 0 and 2
    merged = make_nodes([0, 0, 0, 0], prev=prev, scale=1)
    assert merged.centers[0] == 0  # tie → smaller center id wins
    assert np.array_equal(merged.star_targets[0], [2, 3])


def test_star_count_bound_lemma_c1():
    """Total stars over a full merge cascade stays <= n log n."""
    rng = np.random.default_rng(5)
    n = 64
    node_of = np.arange(n)
    prev = make_nodes(node_of)
    total_stars = sum(t.size for t in prev.star_targets)
    groups = n
    scale = 1
    while groups > 1:
        groups = max(groups // 3, 1)
        node_of = rng.integers(0, groups, size=n)
        # force laminarity: merge by previous node, not by vertex
        node_of = node_of[prev.node_of]
        members = [np.flatnonzero(node_of == j) for j in range(groups)]
        members = [m for m in members if m.size]
        # re-densify
        dense = np.full(n, -1, dtype=np.int64)
        for j, m in enumerate(members):
            dense[m] = j
        cur = select_centers(scale, dense, members, prev)
        total_stars += sum(t.size for t in cur.star_targets)
        prev = cur
        scale += 1
    assert total_stars <= n * np.log2(n)


def test_empty_node_rejected():
    with pytest.raises(HopsetError):
        select_centers(0, np.array([0]), [np.zeros(0, dtype=np.int64)], None)
