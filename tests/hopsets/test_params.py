"""Parameter schedules of Section 2.1 and the eq. (2) hopbound."""

import math

import pytest

from repro.hopsets.errors import ParameterError
from repro.hopsets.params import (
    HopsetParams,
    PhaseSchedule,
    exponential_stage_end,
    num_phases,
    practical_beta,
    theoretical_beta,
)


def test_parameter_validation():
    with pytest.raises(ParameterError):
        HopsetParams(epsilon=0.0)
    with pytest.raises(ParameterError):
        HopsetParams(epsilon=1.0)
    with pytest.raises(ParameterError):
        HopsetParams(kappa=0)
    with pytest.raises(ParameterError):
        HopsetParams(rho=0.5)
    with pytest.raises(ParameterError):
        HopsetParams(rho=0.0)
    with pytest.raises(ParameterError):
        HopsetParams(beta=0)


def test_num_phases_formula():
    # κ=2, ρ=0.4: κρ=0.8, ⌊log 0.8⌋=−1, ⌈3/0.8⌉=4 → ℓ=2
    assert num_phases(2, 0.4) == 2
    # κ=4, ρ=0.45: κρ=1.8, ⌊log 1.8⌋=0, ⌈5/1.8⌉=3 → ℓ=2
    assert num_phases(4, 0.45) == 2
    # never below 1
    assert num_phases(2, 0.49) >= 1


def test_exponential_stage_empty_when_kappa_rho_below_one():
    assert exponential_stage_end(2, 0.4) < 0
    assert exponential_stage_end(4, 0.3) >= 0


def test_degree_thresholds_exponential_then_fixed():
    p = HopsetParams(kappa=4, rho=0.45)
    n = 256
    i0 = p.i0
    for i in range(p.ell + 1):
        d = p.degree_threshold(n, i)
        if i <= i0:
            assert d == math.ceil(n ** (2.0**i / p.kappa))
        else:
            assert d == math.ceil(n**p.rho)


def test_degree_threshold_bounds():
    p = HopsetParams(kappa=2, rho=0.4)
    assert p.degree_threshold(4, 0) >= 2  # floor of 2
    with pytest.raises(ParameterError):
        p.degree_threshold(100, p.ell + 1)


def test_delta_schedule_hits_scale_at_penultimate_phase():
    p = HopsetParams(epsilon=0.25, kappa=2, rho=0.4, beta=8)
    sched = PhaseSchedule.for_scale(n=128, k=5, params=p, eps=0.25, eps_prev=0.0)
    # δ_{ℓ−1} = 2^{k+1}: the corrected α (see params.py comment)
    assert sched.deltas[sched.ell - 1] == pytest.approx(2.0**6)
    assert sched.deltas[sched.ell] == pytest.approx(2.0**6 / 0.25)
    # geometric 1/ε growth
    for i in range(sched.ell):
        assert sched.deltas[i + 1] / sched.deltas[i] == pytest.approx(4.0)


def test_threshold_includes_eps_prev():
    p = HopsetParams(epsilon=0.25, beta=8)
    s = PhaseSchedule.for_scale(64, 4, p, eps=0.25, eps_prev=0.5)
    assert s.threshold(0) == pytest.approx(1.5 * s.deltas[0])


def test_radius_recurrence():
    p = HopsetParams(epsilon=0.25, beta=8)
    s = PhaseSchedule.for_scale(64, 4, p, eps=0.25, eps_prev=0.0)
    log_n = math.log2(64)
    assert s.radii[0] == 0.0
    for i in range(s.ell):
        expect = (2 * s.deltas[i] + 4 * s.radii[i]) * log_n + s.radii[i]
        assert s.radii[i + 1] == pytest.approx(expect)


def test_sigma_recurrence_eq20():
    p = HopsetParams(epsilon=0.25, beta=8)
    s = PhaseSchedule.for_scale(64, 4, p, eps=0.25, eps_prev=0.0)
    log_n = math.log2(64)
    assert s.sigmas[0] == 0.0
    for i in range(s.ell):
        expect = (4 * log_n + 1) * s.sigmas[i] + 2 * (2 * s.beta + 1) * log_n
        assert s.sigmas[i + 1] == pytest.approx(expect)
    assert s.sigma == pytest.approx(2 * s.sigmas[-1] + 2 * s.beta + 1)


def test_theoretical_beta_is_galactic_and_monotone():
    b_small = theoretical_beta(2**10, 2**10, 0.1, 2, 0.25)
    b_big = theoretical_beta(2**20, 2**20, 0.1, 2, 0.25)
    assert b_small > 1e6       # far beyond any practical budget
    assert b_big > b_small     # grows with n
    assert theoretical_beta(1, 10, 0.1, 2, 0.25) == 1.0


def test_practical_beta_logarithmic():
    assert practical_beta(2) == 4
    assert practical_beta(1024) == 12
    assert practical_beta(2**20) == 22


def test_beta_for_prefers_explicit():
    assert HopsetParams(beta=5).beta_for(10**6) == 5
    assert HopsetParams().beta_for(1024) == practical_beta(1024)
