"""Section 4: the memory property of path-reporting hopsets."""

import numpy as np
import pytest

from repro.graphs.generators import erdos_renyi, layered_hop_graph, path_graph
from repro.hopsets.errors import PathReportingError
from repro.hopsets.multi_scale import build_hopset
from repro.hopsets.params import HopsetParams, PhaseSchedule
from repro.hopsets.path_reporting import build_path_reporting_hopset, memory_path_stats
from repro.hopsets.verification import verify_memory_paths
from repro.hopsets.errors import CertificationError


def test_every_edge_carries_a_path():
    g = erdos_renyi(30, 0.12, seed=31, w_range=(1.0, 3.0))
    H, _ = build_path_reporting_hopset(g, HopsetParams(beta=6))
    assert H.num_records > 0
    assert all(e.path is not None for e in H.edges)


def test_memory_property_verified():
    """Paths live in E ∪ H_{<k} and weigh at most the edge (§4.1)."""
    for gen, seed in ((erdos_renyi, 32), (layered_hop_graph, 33)):
        g = (
            erdos_renyi(25, 0.15, seed=seed, w_range=(1.0, 2.0))
            if gen is erdos_renyi
            else layered_hop_graph(8, 3, seed=seed)
        )
        H, _ = build_path_reporting_hopset(g, HopsetParams(beta=6))
        verify_memory_paths(g, H)  # raises on violation


def test_memory_property_in_faithful_weight_mode():
    g = path_graph(20, w_range=(1.0, 2.0), seed=34)
    H, _ = build_path_reporting_hopset(
        g, HopsetParams(beta=6, tight_weights=False)
    )
    verify_memory_paths(g, H)


def test_verify_rejects_missing_path():
    g = path_graph(10, weight=1.0)
    H, _ = build_hopset(g, HopsetParams(beta=4))  # no paths recorded
    if H.num_records:
        with pytest.raises(CertificationError):
            verify_memory_paths(g, H)


def test_path_stats_within_sigma():
    g = erdos_renyi(30, 0.12, seed=35)
    params = HopsetParams(beta=6)
    H, _ = build_path_reporting_hopset(g, params)
    sched = PhaseSchedule.for_scale(g.n, max(H.scales()), params, 0.25, 0.0)
    stats = memory_path_stats(H, sched.sigma)
    assert stats.num_edges == H.num_records
    assert stats.max_hops >= 1
    assert stats.within_bound  # eq. (20) is a generous bound


def test_path_stats_requires_paths():
    g = path_graph(10)
    H, _ = build_hopset(g, HopsetParams(beta=4))
    if H.num_records:
        with pytest.raises(PathReportingError):
            memory_path_stats(H, 100.0)


def test_tight_weight_equals_path_weight():
    """In tight mode the edge weight IS the realized memory-path weight."""
    from repro.graphs.distances import path_weight

    g = erdos_renyi(25, 0.15, seed=36, w_range=(1.0, 2.0))
    H, _ = build_path_reporting_hopset(g, HopsetParams(beta=6, tight_weights=True))
    for e in H.edges:
        lower = H.union_graph_up_to_scale(g, e.scale - 1)
        w = path_weight(lower, list(e.path))
        assert w == pytest.approx(e.weight, rel=1e-9)


def test_path_recording_does_not_change_weights():
    """Recording is observational: same hopset with and without paths."""
    g = erdos_renyi(25, 0.15, seed=37)
    params = HopsetParams(beta=6)
    h_plain, _ = build_hopset(g, params, record_paths=False)
    h_paths, _ = build_hopset(g, params, record_paths=True)
    a = sorted((e.u, e.v, round(e.weight, 9), e.scale, e.phase) for e in h_plain.edges)
    b = sorted((e.u, e.v, round(e.weight, 9), e.scale, e.phase) for e in h_paths.edges)
    assert a == b
