"""Appendix D: Λ-free path-reporting hopsets + SPT (Theorems D.1/D.2)."""

import numpy as np
import pytest

from repro.graphs.distances import dijkstra
from repro.graphs.generators import path_graph, wide_weight_graph
from repro.hopsets.params import HopsetParams
from repro.hopsets.reduction_paths import (
    build_reduced_path_reporting_hopset,
    spt_hop_budget,
)
from repro.hopsets.verification import certify, verify_memory_paths
from repro.sssp.spt import approximate_spt


@pytest.fixture(scope="module")
def wide_setup():
    g = wide_weight_graph(36, 1e5, seed=121)
    H, rep = build_reduced_path_reporting_hopset(g, HopsetParams(epsilon=0.25, beta=8))
    return g, H, rep


def test_every_edge_has_a_memory_path(wide_setup):
    g, H, rep = wide_setup
    assert H.num_records > 0
    assert all(e.path is not None for e in H.edges)


def test_memory_property_holds_across_layers(wide_setup):
    """Paths reference only strictly-lower scale codes and weigh ≤ edge."""
    g, H, _ = wide_setup
    verify_memory_paths(g, H)


def test_layer_ordering_stars_below_lifted(wide_setup):
    g, H, rep = wide_setup
    for k, base in rep.code_of_scale.items():
        stars = [e for e in H.edges if e.scale == base]
        lifted = [e for e in H.edges if base < e.scale < base + 256]
        for e in stars:
            assert e.kind == "star"
        for e in lifted:
            assert e.kind in ("supercluster", "interconnect")


def test_hopset_is_safe(wide_setup):
    g, H, _ = wide_setup
    cert = certify(g, H, beta=g.n - 1, epsilon=100.0)
    assert cert.safe


def test_stretch_certified_at_en19_budget(wide_setup):
    g, H, _ = wide_setup
    cert = certify(g, H, beta=spt_hop_budget(8), epsilon=6 * 0.25)
    assert cert.holds, f"max stretch {cert.max_stretch}"


def test_spt_valid_on_wide_weight_graph(wide_setup):
    g, H, _ = wide_setup
    spt = approximate_spt(g, H, 0, hop_budget=spt_hop_budget(8))
    exact = dijkstra(g, 0)
    fin = np.isfinite(exact) & (exact > 0)
    assert np.all(spt.dist[fin] >= exact[fin] - 1e-6)
    assert float(np.max(spt.dist[fin] / exact[fin])) <= 1 + 6 * 0.25 + 1e-6
    for v in range(g.n):
        p = int(spt.parent[v])
        if v == 0:
            assert p == 0
            continue
        assert g.has_edge(p, v)
        assert np.isclose(spt.dist[v], spt.dist[p] + g.edge_weight(p, v))


def test_spt_across_sources(wide_setup):
    g, H, _ = wide_setup
    for s in (5, 17, 30):
        spt = approximate_spt(g, H, s, hop_budget=spt_hop_budget(8))
        exact = dijkstra(g, s)
        fin = np.isfinite(exact) & (exact > 0)
        assert float(np.max(spt.dist[fin] / exact[fin])) <= 1.6


def test_star_edges_carry_in_node_paths(wide_setup):
    g, H, _ = wide_setup
    stars = [e for e in H.edges if e.kind == "star"]
    assert stars
    for e in stars:
        total = 0.0
        for a, b in zip(e.path, e.path[1:]):
            w = g.edge_weight(int(a), int(b))
            assert np.isfinite(w), "star paths must use original edges only"
            total += w
        assert total <= e.weight + 1e-6


def test_deterministic(wide_setup):
    g, _, _ = wide_setup
    a, _ = build_reduced_path_reporting_hopset(g, HopsetParams(beta=8))
    b, _ = build_reduced_path_reporting_hopset(g, HopsetParams(beta=8))
    ka = [(e.u, e.v, e.weight, e.scale) for e in a.edges]
    kb = [(e.u, e.v, e.weight, e.scale) for e in b.edges]
    assert ka == kb


def test_narrow_band_degenerates_gracefully():
    g = path_graph(20, weight=1.0)
    H, rep = build_reduced_path_reporting_hopset(g, HopsetParams(epsilon=0.25, beta=4))
    verify_memory_paths(g, H)
    spt = approximate_spt(g, H, 0, hop_budget=spt_hop_budget(4))
    exact = dijkstra(g, 0)
    assert np.all(spt.dist >= exact - 1e-9)


def test_trivial_inputs():
    from repro.graphs.build import from_edges

    H, rep = build_reduced_path_reporting_hopset(from_edges(3, []), HopsetParams(beta=4))
    assert H.num_records == 0 and rep.relevant == []
