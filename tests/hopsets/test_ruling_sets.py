"""Algorithm 4: (3, 2·log n)-ruling sets, checked against oracles."""

import numpy as np
import pytest

from repro.graphs.generators import erdos_renyi, path_graph, random_geometric
from repro.hopsets.clusters import Partition
from repro.hopsets.errors import HopsetError
from repro.hopsets.ruling_sets import ruling_set
from repro.pram.machine import PRAM
from repro.pram.primitives import ceil_log2

from tests.hopsets.helpers import pairwise_virtual_distances, virtual_adjacency


def check_ruling_properties(graph, partition, candidates, threshold, hops):
    """Assert Lemma B.2 (3-separation) and Lemma B.3 (2·log n ruling)."""
    q = ruling_set(PRAM(), graph, partition, candidates, threshold, hops)
    assert not np.any(q & ~candidates), "Q must be a subset of the candidates"
    adj = virtual_adjacency(graph, partition, threshold, hops)
    vd = pairwise_virtual_distances(adj)
    q_idx = np.flatnonzero(q)
    # 3-separation: pairwise virtual distance >= 3 (or disconnected)
    for i, a in enumerate(q_idx):
        for b in q_idx[i + 1:]:
            d = vd[a, b]
            assert d < 0 or d >= 3, f"clusters {a},{b} at virtual distance {d}"
    # ruling: every candidate within 2*ceil(log2 n) of some Q cluster
    bound = 2 * ceil_log2(max(partition.n, 2))
    for c in np.flatnonzero(candidates):
        dmin = min((vd[c, s] for s in q_idx if vd[c, s] >= 0), default=-1)
        assert 0 <= dmin <= bound, f"candidate {c} is not ruled (min dist {dmin})"
    return q


def test_path_graph_unit_threshold():
    g = path_graph(16, weight=1.0)
    part = Partition.singletons(16)
    cands = np.ones(16, dtype=bool)
    q = check_ruling_properties(g, part, cands, threshold=1.0, hops=1)
    assert q.any()


def test_random_graph_various_thresholds():
    g = erdos_renyi(24, 0.12, seed=3, w_range=(1.0, 2.0))
    part = Partition.singletons(24)
    for threshold in (1.5, 3.0):
        cands = np.ones(24, dtype=bool)
        check_ruling_properties(g, part, cands, threshold, hops=2)


def test_subset_candidates():
    g = random_geometric(20, 0.3, seed=5)
    part = Partition.singletons(20)
    cands = np.zeros(20, dtype=bool)
    cands[::2] = True
    q = check_ruling_properties(g, part, cands, threshold=0.3, hops=2)
    assert set(np.flatnonzero(q)) <= set(np.flatnonzero(cands))


def test_empty_candidates_yield_empty_set():
    g = path_graph(6)
    part = Partition.singletons(6)
    q = ruling_set(PRAM(), g, part, np.zeros(6, dtype=bool), 1.0, 1)
    assert not q.any()


def test_single_candidate_selected():
    g = path_graph(6)
    part = Partition.singletons(6)
    cands = np.zeros(6, dtype=bool)
    cands[3] = True
    q = ruling_set(PRAM(), g, part, cands, 1.0, 1)
    assert q[3] and q.sum() == 1


def test_isolated_candidates_all_selected():
    # threshold below min weight → virtual graph has no edges → everyone rules
    g = path_graph(8, weight=2.0)
    part = Partition.singletons(8)
    cands = np.ones(8, dtype=bool)
    q = ruling_set(PRAM(), g, part, cands, threshold=1.0, hops=1)
    assert q.all()


def test_deterministic_across_runs():
    g = erdos_renyi(30, 0.1, seed=9)
    part = Partition.singletons(30)
    cands = np.ones(30, dtype=bool)
    q1 = ruling_set(PRAM(), g, part, cands, 2.0, 2)
    q2 = ruling_set(PRAM(), g, part, cands, 2.0, 2)
    assert np.array_equal(q1, q2)


def test_mask_shape_checked():
    g = path_graph(4)
    with pytest.raises(HopsetError):
        ruling_set(PRAM(), g, Partition.singletons(4), np.ones(3, dtype=bool), 1.0, 1)


def test_clique_selects_exactly_one():
    # complete graph at unit threshold: all clusters mutually adjacent →
    # any two selected would violate 3-separation
    from repro.graphs.generators import complete_graph

    g = complete_graph(10, seed=1, w_range=(1.0, 1.0))
    part = Partition.singletons(10)
    cands = np.ones(10, dtype=bool)
    q = check_ruling_properties(g, part, cands, threshold=1.0, hops=1)
    assert q.sum() == 1
