"""Single-scale construction: phase mechanics and edge safety."""

import numpy as np
import pytest

from repro.graphs.distances import dijkstra
from repro.graphs.generators import erdos_renyi, path_graph
from repro.hopsets.hopset import INTERCONNECT, SUPERCLUSTER
from repro.hopsets.params import HopsetParams, PhaseSchedule
from repro.hopsets.single_scale import build_single_scale
from repro.pram.machine import PRAM


def build(g, k, beta=6, eps=0.25, tight=True, record_paths=False):
    p = HopsetParams(epsilon=eps, kappa=2, rho=0.4, beta=beta, tight_weights=tight)
    sched = PhaseSchedule.for_scale(g.n, k, p, eps=eps, eps_prev=0.0)
    return build_single_scale(
        PRAM(), g, sched, tight_weights=tight, record_paths=record_paths
    )


def test_edges_never_shorten_distances():
    """Lemmas 2.3/2.9: every hopset edge weight >= the true distance."""
    g = erdos_renyi(30, 0.12, seed=21, w_range=(1.0, 3.0))
    exact = {s: dijkstra(g, s) for s in range(g.n)}
    for k in (2, 3, 4):
        edges, _ = build(g, k)
        for e in edges:
            assert e.weight >= exact[e.u][e.v] - 1e-9, (e.u, e.v, e.kind)


def test_faithful_weights_dominate_tight_weights():
    g = path_graph(20, w_range=(1.0, 2.0), seed=22)
    tight_edges, _ = build(g, 3, tight=True)
    faithful_edges, _ = build(g, 3, tight=False)
    t = {(e.u, e.v, e.kind, e.phase): e.weight for e in tight_edges}
    f = {(e.u, e.v, e.kind, e.phase): e.weight for e in faithful_edges}
    assert set(t) == set(f)  # same structure, different weights
    for key in t:
        assert f[key] >= t[key] - 1e-9


def test_edge_endpoints_are_cluster_centers():
    g = erdos_renyi(24, 0.15, seed=23)
    edges, stats = build(g, 2)
    assert all(e.u != e.v for e in edges)
    assert all(e.kind in (SUPERCLUSTER, INTERCONNECT) for e in edges)


def test_phase_stats_monotone_cluster_counts():
    g = erdos_renyi(40, 0.1, seed=24)
    edges, stats = build(g, 3)
    for a, b in zip(stats, stats[1:]):
        assert b.num_clusters < a.num_clusters  # superclustering shrinks P_i


def test_supercluster_contains_deg_plus_one_lemma_2_5():
    """Each phase's shrink factor: |P_{i+1}| <= |P_i| / (deg_i + 1)."""
    g = erdos_renyi(50, 0.15, seed=25)
    edges, stats = build(g, 4)
    for a, b in zip(stats, stats[1:]):
        # superclusters formed = |Q_i| and each absorbed >= deg_i + 1
        # clusters of P_i, so |P_{i+1}| * (deg_i + 1) <= |P_i|
        assert b.num_clusters * (a.degree_threshold + 1) <= a.num_clusters


def test_popular_clusters_always_superclustered_lemma_2_4():
    # would raise CertificationError inside the build if violated
    for seed in (1, 2, 3, 4):
        g = erdos_renyi(30, 0.2, seed=seed)
        build(g, 2)
        build(g, 4)


def test_interconnection_edges_unique_pairs_per_phase():
    g = erdos_renyi(30, 0.1, seed=27)
    edges, _ = build(g, 3)
    seen = set()
    for e in edges:
        if e.kind == INTERCONNECT:
            key = (min(e.u, e.v), max(e.u, e.v), e.phase)
            assert key not in seen, "duplicate interconnection edge"
            seen.add(key)


def test_no_edges_on_single_vertex_or_empty():
    from repro.graphs.csr import Graph

    g = Graph(1, np.zeros(0), np.zeros(0), np.zeros(0))
    edges, stats = build(g, 2)
    assert edges == [] and stats == []


def test_scale_too_small_for_any_neighbor():
    # threshold below min weight at k=0-ish → everything isolated: no edges
    g = path_graph(10, weight=100.0)
    edges, stats = build(g, 0)
    assert edges == []


def test_record_paths_produces_memory_paths():
    g = erdos_renyi(25, 0.15, seed=28, w_range=(1.0, 2.0))
    edges, _ = build(g, 3, record_paths=True)
    assert edges, "expected some hopset edges"
    for e in edges:
        assert e.path is not None
        assert e.path[0] == e.u and e.path[-1] == e.v
        # path weight (in the base graph for scale built on G) <= edge weight
        total = 0.0
        ok = True
        for a, b in zip(e.path, e.path[1:]):
            w = g.edge_weight(int(a), int(b))
            if not np.isfinite(w):
                ok = False
                break
            total += w
        assert ok, f"memory path of ({e.u},{e.v}) leaves the graph"
        assert total <= e.weight + 1e-6
