"""Hopset-store inventory and garbage collection (``repro store {ls,gc}``)."""

import os
import time

import pytest

from repro.graphs.generators import layered_hop_graph
from repro.hopsets.multi_scale import build_hopset
from repro.hopsets.params import HopsetParams
from repro.hopsets.store import HopsetStore, store_key


@pytest.fixture(scope="module")
def filed(tmp_path_factory):
    """A store holding three artifacts with distinct keys and mtimes."""
    root = tmp_path_factory.mktemp("store")
    g = layered_hop_graph(8, 3, seed=91)
    store = HopsetStore(root)
    keys = []
    for i, eps in enumerate((0.2, 0.4, 0.8)):
        params = HopsetParams(epsilon=eps, beta=8)
        H, _ = build_hopset(g, params)
        path = store.save(g, params, H)
        # stamp strictly increasing mtimes so "newest" is deterministic
        os.utime(path, (time.time() - 100 + i, time.time() - 100 + i))
        keys.append(store_key(g, params))
    return store, keys


def test_entries_lists_newest_first(filed):
    store, keys = filed
    entries = store.entries()
    assert [e.key for e in entries] == list(reversed(keys))
    for e in entries:
        assert e.size > 0 and e.path.is_file() and e.age_s >= 0.0


def test_entries_of_missing_dir_is_empty(tmp_path):
    assert HopsetStore(tmp_path / "nope").entries() == []
    assert HopsetStore(tmp_path / "nope").total_bytes() == 0


def test_gc_keep_newest_trims_oldest(filed, tmp_path):
    store, keys = filed
    # operate on a copy so the module fixture stays intact
    copy = HopsetStore(tmp_path / "copy")
    copy.root.mkdir()
    for e in store.entries():
        (copy.root / e.path.name).write_bytes(e.path.read_bytes())
        os.utime(copy.root / e.path.name, (e.mtime, e.mtime))
    removed = copy.gc(keep_newest=1)
    assert [e.key for e in removed] == [keys[1], keys[0]]  # oldest-first out
    assert [e.key for e in copy.entries()] == [keys[2]]


def test_gc_max_bytes_evicts_oldest_first(filed, tmp_path):
    store, keys = filed
    copy = HopsetStore(tmp_path / "copy2")
    copy.root.mkdir()
    for e in store.entries():
        (copy.root / e.path.name).write_bytes(e.path.read_bytes())
        os.utime(copy.root / e.path.name, (e.mtime, e.mtime))
    total = copy.total_bytes()
    newest = copy.entries()[0]
    removed = copy.gc(max_bytes=newest.size)
    assert copy.total_bytes() <= newest.size
    assert {e.key for e in removed} == {keys[0], keys[1]}
    assert copy.total_bytes() < total


def test_gc_without_constraints_removes_nothing(filed):
    store, _ = filed
    before = [e.key for e in store.entries()]
    assert store.gc() == []
    assert [e.key for e in store.entries()] == before


def test_gc_rejects_negative_bounds(filed):
    store, _ = filed
    with pytest.raises(ValueError):
        store.gc(keep_newest=-1)
    with pytest.raises(ValueError):
        store.gc(max_bytes=-1)


def test_gc_keep_newest_zero_empties_the_store(filed, tmp_path):
    store, _ = filed
    copy = HopsetStore(tmp_path / "copy3")
    copy.root.mkdir()
    for e in store.entries():
        (copy.root / e.path.name).write_bytes(e.path.read_bytes())
    assert len(copy.gc(keep_newest=0)) == 3
    assert copy.entries() == []
