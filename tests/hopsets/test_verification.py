"""The certifier itself: it must catch bad hopsets, not just bless good ones."""

import numpy as np

from repro.graphs.build import from_edges
from repro.graphs.generators import erdos_renyi, path_graph
from repro.hopsets.hopset import INTERCONNECT, Hopset, HopsetEdge
from repro.hopsets.multi_scale import build_hopset
from repro.hopsets.params import HopsetParams
from repro.hopsets.verification import achieved_hopbound, certify


def test_unsafe_hopset_detected():
    """An edge lighter than the true distance must flip `safe`."""
    g = path_graph(5, weight=2.0)  # d(0,4) = 8
    h = Hopset(n=5)
    h.add([HopsetEdge(0, 4, 1.0, scale=2, phase=0, kind=INTERCONNECT)])
    cert = certify(g, h, beta=4, epsilon=0.1)
    assert not cert.safe
    assert not cert.holds


def test_empty_hopset_on_shallow_graph_certifies():
    g = from_edges(3, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.5)])
    h = Hopset(n=3)
    cert = certify(g, h, beta=2, epsilon=0.01)
    assert cert.safe and cert.holds
    assert cert.max_stretch == 1.0


def test_empty_hopset_on_deep_graph_fails_stretch():
    g = path_graph(10, weight=1.0)
    h = Hopset(n=10)
    cert = certify(g, h, beta=2, epsilon=0.1)
    assert cert.safe           # doing nothing never shortens
    assert not cert.holds      # but far pairs exceed the budget
    assert cert.max_stretch == float("inf")


def test_disconnected_pairs_skipped():
    g = from_edges(4, [(0, 1, 1.0), (2, 3, 1.0)])
    cert = certify(g, Hopset(n=4), beta=2, epsilon=0.1)
    assert cert.pairs_checked == 2  # (0,1) and (2,3) only
    assert cert.holds


def test_no_pairs_graph():
    g = from_edges(3, [])
    cert = certify(g, Hopset(n=3), beta=2, epsilon=0.1)
    assert cert.pairs_checked == 0 and cert.holds


def test_exact_hopset_gives_stretch_one():
    """Adding every true distance as an edge: one hop, stretch 1."""
    from repro.graphs.distances import all_pairs_dijkstra

    g = erdos_renyi(12, 0.3, seed=1)
    mat = all_pairs_dijkstra(g)
    h = Hopset(n=12)
    edges = []
    for u in range(12):
        for v in range(u + 1, 12):
            if np.isfinite(mat[u, v]):
                edges.append(HopsetEdge(u, v, float(mat[u, v]), 2, 0, INTERCONNECT))
    h.add(edges)
    cert = certify(g, h, beta=1, epsilon=0.0)
    assert cert.safe and cert.holds and cert.max_stretch == 1.0


def test_achieved_hopbound_monotone_story():
    g = path_graph(16, weight=1.0)
    h_empty = Hopset(n=16)
    assert achieved_hopbound(g, h_empty, epsilon=0.0) == 15
    H, _ = build_hopset(g, HopsetParams(epsilon=0.25, beta=6))
    hb = achieved_hopbound(g, H, epsilon=0.25)
    assert hb < 15  # the hopset genuinely shortens hop radii


def test_achieved_hopbound_cap():
    g = path_graph(12, weight=1.0)
    h = Hopset(n=12)
    assert achieved_hopbound(g, h, epsilon=0.0, max_hops=3) == 4  # cap + 1


def test_mean_and_p_stats_sane():
    g = erdos_renyi(16, 0.2, seed=2)
    H, _ = build_hopset(g, HopsetParams(beta=6))
    cert = certify(g, H, beta=13, epsilon=0.25)
    assert 1.0 <= cert.mean_stretch <= cert.max_stretch
