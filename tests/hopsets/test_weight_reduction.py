"""Appendix C: Klein–Sairam weight reduction."""

import numpy as np
import pytest

from repro.graphs.distances import dijkstra
from repro.graphs.generators import path_graph, wide_weight_graph
from repro.hopsets.params import HopsetParams
from repro.hopsets.verification import certify
from repro.hopsets.weight_reduction import build_reduced_hopset, relevant_scales


def test_relevant_scales_cover_edge_weights():
    g = wide_weight_graph(30, 1e4, seed=1)
    ks = relevant_scales(g, epsilon=0.25, beta=4)
    assert ks == sorted(ks)
    n = g.n
    for w in g.edge_w:
        # every edge weight must fall into some relevant scale's window
        assert any((w > (0.25 / n) * 2**k) and (w <= 2 ** (k + 1)) for k in ks)


def test_relevant_scales_narrow_band_graph():
    g = path_graph(10, weight=1.0)
    ks = relevant_scales(g, epsilon=0.25, beta=4)
    # unit weights: relevant scales are the ones whose window contains 1
    assert ks, "unit-weight graph must have at least one relevant scale"
    assert all((0.25 / 10) * 2**k < 1.0 <= 2 ** (k + 1) or k >= 0 for k in ks)


def test_relevant_scales_empty_graph():
    from repro.graphs.build import from_edges

    assert relevant_scales(from_edges(3, []), 0.25, 4) == []


def test_star_edge_bound_lemma_c1():
    g = wide_weight_graph(40, 1e6, seed=2)
    H, report = build_reduced_hopset(g, HopsetParams(epsilon=0.25, beta=6))
    assert report.star_edges <= g.n * np.log2(g.n)


def test_reduced_hopset_is_safe():
    g = wide_weight_graph(30, 1e5, seed=3)
    H, _ = build_reduced_hopset(g, HopsetParams(epsilon=0.25, beta=6))
    cert = certify(g, H, beta=g.n - 1, epsilon=100.0)
    assert cert.safe


def test_reduced_hopset_stretch_at_moderate_hops():
    g = wide_weight_graph(30, 1e5, seed=4)
    H, _ = build_reduced_hopset(g, HopsetParams(epsilon=0.25, beta=8))
    # Lemma 4.3 of [EN19]: (1+6ε, 6β+5) — we check the measured shape
    cert = certify(g, H, beta=6 * 8 + 5, epsilon=6 * 0.25)
    assert cert.safe and cert.holds, f"max stretch {cert.max_stretch}"


def test_star_weights_upper_bound_node_radius():
    """Star edge weight < |U|·(ε/n)·2^k (the §C.3 spanning-tree bound)."""
    g = wide_weight_graph(30, 1e4, seed=5)
    eps = 0.25
    H, report = build_reduced_hopset(g, HopsetParams(epsilon=eps, beta=6))
    stars = [e for e in H.edges if e.kind == "star"]
    for e in stars:
        assert e.weight <= g.n * (eps / g.n) * 2.0**e.scale * g.min_weight() + 1e-9


def test_star_edges_never_shorten():
    g = wide_weight_graph(25, 1e4, seed=6)
    H, _ = build_reduced_hopset(g, HopsetParams(epsilon=0.25, beta=6))
    exact = {s: dijkstra(g, s) for s in range(g.n)}
    for e in H.edges:
        assert e.weight >= exact[e.u][e.v] - 1e-6


def test_reduction_scale_count_tracks_weight_spread():
    narrow = path_graph(20, weight=1.0)
    wide = wide_weight_graph(20, 1e6, seed=7)
    _, rn = build_reduced_hopset(narrow, HopsetParams(beta=4))
    _, rw = build_reduced_hopset(wide, HopsetParams(beta=4))
    assert len(rw.relevant) > len(rn.relevant)


def test_empty_and_tiny_graphs():
    from repro.graphs.build import from_edges

    H, rep = build_reduced_hopset(from_edges(3, []), HopsetParams(beta=4))
    assert H.num_records == 0 and rep.relevant == []


def test_deterministic():
    g = wide_weight_graph(25, 1e4, seed=8)
    h1, _ = build_reduced_hopset(g, HopsetParams(beta=6))
    h2, _ = build_reduced_hopset(g, HopsetParams(beta=6))
    k1 = [(e.u, e.v, e.weight, e.scale, e.kind) for e in h1.edges]
    k2 = [(e.u, e.v, e.weight, e.scale, e.kind) for e in h2.edges]
    assert k1 == k2
