"""Cross-cutting edge cases: hop budgets, degenerate graphs, determinism."""

import numpy as np
import pytest

from repro.graphs.build import from_edges
from repro.graphs.distances import dijkstra
from repro.graphs.generators import cycle_graph, erdos_renyi, path_graph, star_graph
from repro.hopsets.multi_scale import build_hopset
from repro.hopsets.params import HopsetParams
from repro.hopsets.path_reporting import build_path_reporting_hopset
from repro.hopsets.verification import certify
from repro.sssp.oracle import HopsetDistanceOracle
from repro.sssp.spt import approximate_spt
from repro.sssp.sssp import approximate_sssp_with_hopset


def test_two_vertex_graph():
    g = from_edges(2, [(0, 1, 3.0)])
    H, _ = build_hopset(g, HopsetParams(beta=4))
    res = approximate_sssp_with_hopset(g, H, 0)
    assert res.dist[1] == 3.0


def test_star_graph_pipeline():
    g = star_graph(30, weight=2.0)
    H, _ = build_hopset(g, HopsetParams(beta=4))
    cert = certify(g, H, beta=2, epsilon=0.0)
    assert cert.holds  # diameter-2 graph: 2 hops always suffice


def test_cycle_graph_pipeline():
    g = cycle_graph(24)
    H, _ = build_hopset(g, HopsetParams(epsilon=0.25, beta=8))
    cert = certify(g, H, beta=17, epsilon=0.25)
    assert cert.safe and cert.holds


def test_disconnected_graph_pipeline():
    g = from_edges(8, [(0, 1, 1.0), (1, 2, 1.0), (4, 5, 1.0), (5, 6, 2.0)])
    H, _ = build_hopset(g, HopsetParams(beta=4))
    res = approximate_sssp_with_hopset(g, H, 0)
    assert np.isfinite(res.dist[2])
    assert not np.isfinite(res.dist[4])
    cert = certify(g, H, beta=7, epsilon=0.5)
    assert cert.safe and cert.holds


def test_oracle_respects_explicit_hop_budget():
    g = path_graph(30, weight=1.0)
    H, _ = build_hopset(g, HopsetParams(epsilon=0.25, beta=8))
    tight = HopsetDistanceOracle(g, H, hop_budget=29)
    loose = HopsetDistanceOracle(g, H, hop_budget=2)
    exact = dijkstra(g, 0)
    assert tight.query(0, 29) >= exact[29]
    assert loose.query(0, 29) >= tight.query(0, 29) - 1e-9


def test_spt_budget_sweep_monotone_quality():
    g = path_graph(36, w_range=(1.0, 2.0), seed=1101)
    H, _ = build_path_reporting_hopset(g, HopsetParams(epsilon=0.25, beta=8))
    exact = dijkstra(g, 0)
    fin = exact > 0
    prev = np.inf
    for budget in (3, 9, 17, 35):
        spt = approximate_spt(g, H, 0, hop_budget=budget)
        worst = float(np.max(spt.dist[fin] / exact[fin]))
        assert worst <= prev + 1e-9
        prev = worst
    assert prev <= 1.25 + 1e-9


def test_identical_graphs_different_vertex_ids_same_shape():
    """Relabeling vertices permutes the hopset but preserves its size."""
    g = erdos_renyi(24, 0.2, seed=1102)
    perm = np.roll(np.arange(24), 7)
    relabeled = from_edges(
        24, [(int(perm[u]), int(perm[v]), float(w)) for u, v, w in zip(*g.edges())]
    )
    h1, _ = build_hopset(g, HopsetParams(beta=6))
    h2, _ = build_hopset(relabeled, HopsetParams(beta=6))
    # ids drive tie-breaking, so the structures differ — but size and
    # certified quality are invariant in shape
    c1 = certify(g, h1, beta=13, epsilon=0.5)
    c2 = certify(relabeled, h2, beta=13, epsilon=0.5)
    assert c1.safe and c2.safe
    assert c1.holds == c2.holds


def test_parallel_heavy_and_light_edges():
    # from_edges dedups to the light one; the heavy parallel never matters
    g = from_edges(3, [(0, 1, 10.0), (0, 1, 1.0), (1, 2, 1.0)])
    assert g.edge_weight(0, 1) == 1.0
    H, _ = build_hopset(g, HopsetParams(beta=4))
    res = approximate_sssp_with_hopset(g, H, 0)
    assert res.dist[2] == 2.0


def test_near_equal_weights_stability():
    w = 1.0 + 1e-12
    g = from_edges(4, [(0, 1, 1.0), (1, 2, w), (2, 3, 1.0), (0, 3, 3.0)])
    H, _ = build_hopset(g, HopsetParams(beta=4))
    cert = certify(g, H, beta=3, epsilon=0.1)
    assert cert.safe
