"""Whole-pipeline integration tests across workload families."""

import numpy as np
import pytest

from repro.analysis.metrics import stretch_stats
from repro.baselines.plain_bellman_ford import plain_sssp_budgeted
from repro.graphs.distances import dijkstra
from repro.graphs.generators import (
    caterpillar,
    erdos_renyi,
    grid_graph,
    layered_hop_graph,
    preferential_attachment,
    random_geometric,
    wide_weight_graph,
)
from repro.hopsets.multi_scale import build_hopset
from repro.hopsets.params import HopsetParams
from repro.hopsets.path_reporting import build_path_reporting_hopset
from repro.hopsets.verification import certify
from repro.hopsets.weight_reduction import build_reduced_hopset
from repro.pram.machine import PRAM
from repro.sssp.sssp import approximate_sssp_with_hopset
from repro.sssp.spt import approximate_spt

WORKLOADS = [
    ("grid", lambda: grid_graph(6, 6, seed=1, w_range=(1.0, 2.0))),
    ("geometric", lambda: random_geometric(36, 0.25, seed=2)),
    ("powerlaw", lambda: preferential_attachment(36, 2, seed=3)),
    ("caterpillar", lambda: caterpillar(12, 2, seed=4, w_range=(1.0, 2.0))),
    ("layered", lambda: layered_hop_graph(9, 4, seed=5)),
]


@pytest.mark.parametrize("name,make", WORKLOADS)
def test_hopset_certifies_on_every_workload(name, make):
    g = make()
    params = HopsetParams(epsilon=0.25, beta=8)
    H, report = build_hopset(g, params)
    cert = certify(g, H, beta=2 * 8 + 1, epsilon=0.25)
    assert cert.safe, name
    assert cert.holds, f"{name}: max stretch {cert.max_stretch}"


@pytest.mark.parametrize("name,make", WORKLOADS)
def test_sssp_beats_plain_bf_at_equal_hop_budget(name, make):
    g = make()
    params = HopsetParams(epsilon=0.25, beta=8)
    H, _ = build_hopset(g, params)
    budget = 17
    exact = dijkstra(g, 0)
    hop = approximate_sssp_with_hopset(g, H, 0, hop_budget=budget)
    plain = plain_sssp_budgeted(PRAM(), g, 0, hops=budget)
    s_hop = stretch_stats(exact, hop.dist)
    s_plain = stretch_stats(exact, plain.dist)
    assert not s_hop.diverged, name
    if not s_plain.diverged:
        assert s_hop.max <= s_plain.max + 1e-9, name


def test_full_pipeline_distances_paths_and_reduction_agree():
    """The three hopset variants answer the same query consistently."""
    g = erdos_renyi(32, 0.12, seed=6, w_range=(1.0, 4.0))
    params = HopsetParams(epsilon=0.25, beta=8)
    exact = dijkstra(g, 0)
    fin = np.isfinite(exact) & (exact > 0)

    plain_h, _ = build_hopset(g, params)
    d1 = approximate_sssp_with_hopset(g, plain_h, 0).dist

    pr_h, _ = build_path_reporting_hopset(g, params)
    spt = approximate_spt(g, pr_h, 0)

    red_h, _ = build_reduced_hopset(g, params)
    d3 = approximate_sssp_with_hopset(g, red_h, 0, hop_budget=6 * 8 + 5).dist

    for d in (d1, spt.dist, d3):
        assert np.all(d[fin] >= exact[fin] - 1e-9)
        assert np.max(d[fin] / exact[fin]) <= 1.6  # all within loose (1+ε) shape


def test_wide_weight_pipeline():
    g = wide_weight_graph(32, 1e5, seed=7)
    params = HopsetParams(epsilon=0.25, beta=8)
    H, rep = build_reduced_hopset(g, params)
    exact = dijkstra(g, 0)
    res = approximate_sssp_with_hopset(g, H, 0, hop_budget=53)
    s = stretch_stats(exact, res.dist)
    assert not s.diverged
    assert s.max <= 1 + 6 * 0.25 + 1e-6


def test_cost_accounting_composes_across_pipeline():
    g = erdos_renyi(24, 0.15, seed=8)
    pram = PRAM()
    H, report = build_hopset(g, HopsetParams(beta=6), pram)
    snapshot = pram.snapshot()
    approximate_sssp_with_hopset(g, H, 0, pram)
    assert pram.cost.work > snapshot.work
    assert pram.cost.time_on(1024) <= pram.cost.work + pram.cost.depth
