"""Failure injection: the certifiers must *catch* broken artifacts.

A verification layer is only trustworthy if it rejects corrupted inputs;
these tests tamper with hopsets, memory paths, and trees and assert the
checks fire.
"""

import numpy as np
import pytest

from repro.graphs.generators import erdos_renyi, path_graph
from repro.hopsets.errors import CertificationError, PathReportingError
from repro.hopsets.hopset import Hopset, HopsetEdge
from repro.hopsets.multi_scale import build_hopset
from repro.hopsets.params import HopsetParams
from repro.hopsets.path_reporting import build_path_reporting_hopset
from repro.hopsets.verification import certify, verify_memory_paths
from repro.sssp.spt import approximate_spt


@pytest.fixture
def graph():
    return erdos_renyi(24, 0.2, seed=601, w_range=(1.0, 3.0))


def _tamper(hopset: Hopset, factor: float) -> Hopset:
    """Scale one edge's weight by ``factor`` (keeping everything else)."""
    out = Hopset(n=hopset.n, beta=hopset.beta, epsilon=hopset.epsilon)
    edges = list(hopset.edges)
    e = edges[len(edges) // 2]
    edges[len(edges) // 2] = HopsetEdge(
        u=e.u, v=e.v, weight=e.weight * factor, scale=e.scale,
        phase=e.phase, kind=e.kind, path=e.path,
    )
    out.add(edges)
    return out


def test_weight_undercut_flips_safety(graph):
    H, _ = build_hopset(graph, HopsetParams(beta=8))
    bad = _tamper(H, 0.01)  # far below the true distance
    cert = certify(graph, bad, beta=17, epsilon=0.25)
    assert not cert.safe


def test_weight_inflation_keeps_safety(graph):
    H, _ = build_hopset(graph, HopsetParams(beta=8))
    inflated = _tamper(H, 100.0)
    cert = certify(graph, inflated, beta=17, epsilon=100.0)
    assert cert.safe  # over-estimating is safe, only stretch can suffer


def test_memory_path_weight_violation_detected(graph):
    H, _ = build_path_reporting_hopset(graph, HopsetParams(beta=8))
    bad = _tamper(H, 0.01)  # now path weight > edge weight
    with pytest.raises(CertificationError):
        verify_memory_paths(graph, bad)


def test_memory_path_off_graph_step_detected(graph):
    H, _ = build_path_reporting_hopset(graph, HopsetParams(beta=8))
    edges = list(H.edges)
    e = edges[0]
    # splice a vertex into the path that has no edge to its neighbors
    far = (e.path[0] + e.path[-1]) % H.n
    fake_path = (e.path[0], far, e.path[-1])
    if graph.has_edge(e.path[0], far) and graph.has_edge(far, e.path[-1]):
        pytest.skip("random vertex happened to be adjacent")
    edges[0] = HopsetEdge(
        u=e.u, v=e.v, weight=e.weight, scale=e.scale, phase=e.phase,
        kind=e.kind, path=fake_path,
    )
    bad = Hopset(n=H.n, beta=H.beta, epsilon=H.epsilon)
    bad.add(edges)
    with pytest.raises(CertificationError):
        verify_memory_paths(graph, bad)


def test_spt_rejects_record_with_missing_path(graph):
    H, _ = build_path_reporting_hopset(graph, HopsetParams(beta=8))
    edges = list(H.edges)
    e = edges[0]
    edges[0] = HopsetEdge(u=e.u, v=e.v, weight=e.weight, scale=e.scale,
                          phase=e.phase, kind=e.kind, path=None)
    bad = Hopset(n=H.n, beta=H.beta, epsilon=H.epsilon)
    bad.add(edges)
    with pytest.raises(PathReportingError):
        approximate_spt(graph, bad, 0)


def test_extreme_weights_still_safe():
    """Weights near float extremes must not break the safety invariant."""
    g = path_graph(12, weight=1e12)
    H, _ = build_hopset(g, HopsetParams(beta=6))
    cert = certify(g, H, beta=11, epsilon=100.0)
    assert cert.safe
    g2 = path_graph(12, weight=1e-9)
    H2, _ = build_hopset(g2, HopsetParams(beta=6))
    cert2 = certify(g2, H2, beta=11, epsilon=100.0)
    assert cert2.safe


def test_tiny_epsilon_does_not_crash():
    g = erdos_renyi(16, 0.25, seed=602)
    H, _ = build_hopset(g, HopsetParams(epsilon=0.01, beta=6))
    cert = certify(g, H, beta=13, epsilon=0.01)
    assert cert.safe  # stretch may or may not hold; safety always must


def test_mixed_magnitude_weights():
    from repro.graphs.build import from_edges

    g = from_edges(
        6,
        [(0, 1, 1e-6), (1, 2, 1e6), (2, 3, 1.0), (3, 4, 1e-6), (4, 5, 1e6)],
    )
    H, _ = build_hopset(g, HopsetParams(beta=6))
    cert = certify(g, H, beta=5, epsilon=100.0)
    assert cert.safe
