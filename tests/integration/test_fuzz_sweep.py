"""Randomized cross-builder sweep (the permanent, trimmed fuzz harness).

Every trial draws a workload family and a parameter combination, builds
all the hopset variants, and checks the invariants that must hold for
*every* configuration: safety (no distance shortening), the memory
property, and SPT structural validity.  The full 120-trial version of this
sweep found the weak-hopset SPT spanning bug fixed in `spt.py`.
"""

import numpy as np
import pytest

from repro.graphs.distances import dijkstra
from repro.graphs.generators import (
    erdos_renyi,
    layered_hop_graph,
    path_graph,
    preferential_attachment,
    wide_weight_graph,
)
from repro.hopsets import (
    HopsetParams,
    build_hopset,
    build_path_reporting_hopset,
    certify,
    verify_memory_paths,
)
from repro.hopsets.weight_reduction import build_reduced_hopset
from repro.sssp.spt import approximate_spt

TRIALS = 24


def _graph(kind: int, n: int, seed: int):
    if kind == 0:
        return erdos_renyi(n, 0.2, seed=seed, w_range=(0.5, 8.0))
    if kind == 1:
        return path_graph(n, w_range=(1.0, 5.0), seed=seed)
    if kind == 2:
        return layered_hop_graph(max(n // 4, 2), 3, seed=seed)
    if kind == 3:
        return wide_weight_graph(n, 10 ** (1 + seed % 5), seed=seed)
    return preferential_attachment(n, 2, seed=seed)


@pytest.mark.parametrize("trial", range(TRIALS))
def test_invariants_under_random_configs(trial):
    rng = np.random.default_rng(424242 + trial)
    n = int(rng.integers(8, 36))
    seed = int(rng.integers(0, 10**6))
    g = _graph(trial % 5, n, seed)
    params = HopsetParams(
        epsilon=float(rng.choice([0.1, 0.25, 0.5])),
        kappa=int(rng.choice([2, 3])),
        rho=float(rng.choice([0.3, 0.4, 0.45])),
        beta=int(rng.choice([2, 4, 8])),
    )
    exact = dijkstra(g, 0)

    H, _ = build_hopset(g, params)
    assert certify(g, H, beta=g.n - 1, epsilon=1e9).safe

    Hp, _ = build_path_reporting_hopset(g, params)
    verify_memory_paths(g, Hp)
    spt = approximate_spt(g, Hp, 0)
    for v in range(g.n):
        p = int(spt.parent[v])
        if v != 0 and np.isfinite(exact[v]):
            assert p >= 0 and g.has_edge(p, v)
            assert np.isclose(spt.dist[v], spt.dist[p] + g.edge_weight(p, v))
    assert np.all(spt.dist >= exact - 1e-6)

    if trial % 4 == 0:
        Hr, _ = build_reduced_hopset(g, params)
        assert certify(g, Hr, beta=g.n - 1, epsilon=1e9).safe
