"""Watchdog envelopes: shapes, verdicts, and real-build evaluation."""

import pytest

from repro.graphs.generators import erdos_renyi
from repro.hopsets.multi_scale import build_hopset
from repro.hopsets.params import HopsetParams
from repro.obs.bounds import (
    Envelope,
    WatchdogVerdict,
    evaluate_envelopes,
    query_envelopes,
    theorem_3_7_envelopes,
    watchdog_table,
)
from repro.pram.cost import CostSnapshot
from repro.pram.machine import PRAM
from repro.sssp.sssp import approximate_sssp_with_hopset


def test_envelope_validation():
    with pytest.raises(ValueError):
        Envelope("x", "wall", 1.0, "f", 1.0)
    with pytest.raises(ValueError):
        Envelope("x", "work", 0.0, "f", 1.0)
    with pytest.raises(ValueError):
        Envelope("x", "work", float("inf"), "f", 1.0)


def test_verdict_status_threshold():
    v = WatchdogVerdict("e", "work", 10, 10.0, 1.0, 1.0, "f")
    assert v.status == "PASS" and v.passed
    v = WatchdogVerdict("e", "work", 20, 10.0, 2.0, 1.0, "f")
    assert v.status == "WARN" and not v.passed
    assert v.to_dict()["status"] == "WARN"


def test_theorem_3_7_envelopes_shapes():
    envs = theorem_3_7_envelopes(256, 1024, HopsetParams(kappa=2, rho=0.4))
    by_name = {e.name: e for e in envs}
    assert set(by_name) == {"thm3.7-depth", "thm3.7-work"}
    assert by_name["thm3.7-depth"].metric == "depth"
    assert by_name["thm3.7-work"].metric == "work"
    # work shape grows with m and with the aspect ratio
    bigger_m = theorem_3_7_envelopes(256, 4096, HopsetParams(kappa=2, rho=0.4))
    assert bigger_m[1].shape > by_name["thm3.7-work"].shape
    wider = theorem_3_7_envelopes(
        256, 1024, HopsetParams(kappa=2, rho=0.4), aspect_ratio=1e6
    )
    assert wider[1].shape > by_name["thm3.7-work"].shape


def test_query_envelopes_scale_with_beta_and_arcs():
    a = query_envelopes(100, 400, 50, beta=4)
    b = query_envelopes(100, 400, 50, beta=8)
    assert b[0].shape == 2 * a[0].shape
    assert b[1].shape == 2 * a[1].shape


def test_evaluate_accepts_snapshot_like_values():
    envs = [Envelope("e", "work", 100.0, "f", warn_at=2.0)]
    verdicts = evaluate_envelopes(CostSnapshot(work=150, depth=3), envs)
    assert verdicts[0].constant == pytest.approx(1.5)
    assert verdicts[0].passed


def test_build_run_stays_inside_calibrated_envelopes():
    g = erdos_renyi(96, 0.08, seed=21)
    pram = PRAM()
    params = HopsetParams(beta=8)
    build_hopset(g, params, pram)
    aspect = g.total_weight() / g.min_weight()
    envs = theorem_3_7_envelopes(g.n, g.num_edges, params, aspect_ratio=aspect)
    verdicts = evaluate_envelopes(pram.cost, envs)
    assert all(v.passed for v in verdicts), [v.to_dict() for v in verdicts]
    assert all(v.constant > 0 for v in verdicts)


def test_query_run_stays_inside_envelopes():
    g = erdos_renyi(80, 0.1, seed=5)
    build_pram = PRAM()
    hopset, _ = build_hopset(g, HopsetParams(beta=8), build_pram)
    pram = PRAM()
    approximate_sssp_with_hopset(g, hopset, 0, pram=pram)
    envs = query_envelopes(g.n, g.num_edges, hopset.num_records, 2 * hopset.beta + 1)
    verdicts = evaluate_envelopes(pram.cost, envs)
    assert all(v.passed for v in verdicts), [v.to_dict() for v in verdicts]


def test_watchdog_table_renders():
    v = WatchdogVerdict("thm", "depth", 5, 10.0, 0.5, 1.0, "β·log n")
    table = watchdog_table([v])
    assert "thm" in table and "PASS" in table
