"""Exporters: Chrome trace events, JSONL, flame report."""

import json

from repro.obs.export import (
    chrome_trace_events,
    flame_report,
    op_wall_report,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import SpanTracer
from repro.pram.cost import CostModel


def _traced_run():
    c = CostModel()
    tracer = SpanTracer.attach(c)
    with c.phase("alpha"):
        c.charge(work=10, depth=2, label="scan")
        with c.phase("alpha/beta"):
            c.charge(work=6, depth=1, label="sort")
    tracer.finish()
    return tracer


def test_chrome_events_have_both_tracks():
    tracer = _traced_run()
    events = chrome_trace_events(tracer)
    x = [e for e in events if e["ph"] == "X"]
    meta = [e for e in events if e["ph"] == "M"]
    assert len(meta) == 2
    # every span appears once per track (wall pid 0, work pid 1)
    assert len(x) == 2 * len(tracer.spans())
    assert {e["pid"] for e in x} == {0, 1}


def test_work_clock_durations_equal_span_work():
    tracer = _traced_run()
    by_name = {
        e["name"]: e
        for e in chrome_trace_events(tracer)
        if e["ph"] == "X" and e["pid"] == 1
    }
    assert by_name["alpha"]["dur"] == 16.0
    assert by_name["alpha/beta"]["dur"] == 6.0
    # child starts inside the parent on the work timeline
    assert by_name["alpha/beta"]["ts"] >= by_name["alpha"]["ts"]


def test_event_args_carry_model_costs():
    tracer = _traced_run()
    ev = next(
        e
        for e in chrome_trace_events(tracer)
        if e["ph"] == "X" and e["name"] == "alpha" and e["pid"] == 0
    )
    assert ev["args"]["work"] == 16
    assert ev["args"]["self_work"] == 10
    assert ev["args"]["depth"] == 3


def test_to_chrome_trace_other_data():
    tracer = _traced_run()
    c = CostModel()
    metrics = MetricsRegistry.attach(c)
    doc = to_chrome_trace(tracer, metrics=metrics, extra={"command": "test"})
    assert doc["displayTimeUnit"] == "ms"
    other = doc["otherData"]
    assert other["total_work"] == 16
    assert other["span_coverage"] == 1.0
    assert other["command"] == "test"
    assert "counters" in other["metrics"]


def test_write_chrome_trace_and_jsonl_round_trip(tmp_path):
    tracer = _traced_run()
    tp = write_chrome_trace(tmp_path / "t.json", tracer)
    doc = json.loads(tp.read_text())
    assert doc["traceEvents"]
    jp = write_jsonl(tmp_path / "t.jsonl", tracer)
    lines = [json.loads(line) for line in jp.read_text().splitlines()]
    assert [d["name"] for d in lines] == ["trace", "alpha", "alpha/beta"]
    assert lines[1]["work"] == 16 and lines[1]["self_work"] == 10


def test_flame_report_indents_and_shortens_names():
    report = flame_report(_traced_run())
    assert "alpha" in report
    # nested span shows only its last path component, indented
    assert "    beta" in report
    assert "alpha/beta" not in report


def test_exporters_accept_a_bare_span():
    root = _traced_run().root
    assert chrome_trace_events(root)
    assert "span_coverage" not in to_chrome_trace(root)["otherData"]
    assert flame_report(root)


def test_op_wall_report_ranks_by_wall_time():
    c = CostModel()
    tracer = SpanTracer.attach(c)
    with c.phase("alpha"):
        c.charge(work=10, depth=2, label="scan")
        c.traffic("scan", elements=10, reads=10, writes=10)
        c.charge(work=6, depth=1, label="sort")
        c.traffic("sort", elements=6, reads=6, writes=6)
    tracer.finish()
    report = op_wall_report(tracer)
    assert "where real time goes" in report
    assert "scan" in report and "sort" in report
    assert "us/call" in report
