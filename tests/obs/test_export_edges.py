"""Exporter edge cases: empty traces, fallback-only traces, worker lanes.

The worker-lane test checks *shape* against a golden file
(``golden_sharded_trace.json``): event names, phases, pids, tids, and
metadata — never timestamps or durations, which are host-dependent.  The
golden trace is synthetic (a hand-driven cost model plus a fabricated
``round_log``), so the shape is fully deterministic.
"""

import json
from pathlib import Path

from repro.obs.export import (
    backend_health_report,
    chrome_trace_events,
    flame_report,
    op_wall_report,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import write_folded_flame
from repro.obs.tracer import SpanTracer
from repro.pram.cost import CostModel

GOLDEN = Path(__file__).parent / "golden_sharded_trace.json"


def _empty_trace():
    c = CostModel()
    tracer = SpanTracer.attach(c, root_name="empty")
    tracer.finish()
    return tracer


def _fallback_only_trace():
    """A trace whose only activity is a backend fallback (no charges)."""
    c = CostModel()
    tracer = SpanTracer.attach(c, root_name="degenerate")
    registry = MetricsRegistry.attach(c)
    c.traffic("backend.fallback", elements=1)
    c.traffic("backend.fallback.worker-death", elements=1)
    c.traffic("backend.serial_round.fallback", elements=1)
    tracer.finish()
    registry.detach(c)
    return tracer, registry


def _synthetic_sharded_trace():
    """A deterministic sharded-looking run: fixed spans + fabricated lanes."""
    ticks = iter(i * 0.001 for i in range(1, 1000))
    c = CostModel()
    tracer = SpanTracer.attach(c, clock=lambda: next(ticks), root_name="sssp")
    with c.phase("sssp_query"):
        c.charge(work=1000, depth=8, label="bf_relax")
        c.traffic("backend.round", elements=512)
        c.traffic("backend.round", elements=512)
    tracer.finish()
    worker_rounds = [
        {
            "round": rid,
            "t0": 0.001 * rid,
            "wall_ns": 900_000,
            "arcs": 512,
            "workers": [
                {
                    "worker": w,
                    "arcs": 256,
                    "gather_ns": 100_000,
                    "segmin_ns": 150_000,
                    "serialize_ns": 200_000,
                    "wall_ns": 500_000,
                }
                for w in (0, 1)
            ],
        }
        for rid in (1, 2)
    ]
    return tracer, worker_rounds


def _shape(events):
    """The timestamp-free skeleton of a trace-event list."""
    skeleton = []
    for e in events:
        entry = {
            "ph": e["ph"],
            "pid": e.get("pid"),
            "tid": e.get("tid"),
            "name": e.get("name"),
        }
        if e["ph"] == "M":
            entry["meta_name"] = e["args"]["name"]
        skeleton.append(entry)
    return skeleton


# -- empty trace --------------------------------------------------------------


def test_empty_trace_exports_cleanly(tmp_path):
    tracer = _empty_trace()
    events = chrome_trace_events(tracer)
    assert [e["ph"] for e in events] == ["M", "M", "X", "X"]  # just the root
    doc = to_chrome_trace(tracer)
    assert doc["otherData"]["total_work"] == 0
    assert doc["otherData"]["span_coverage"] == 1.0
    write_chrome_trace(tmp_path / "t.json", tracer)
    json.loads((tmp_path / "t.json").read_text())
    write_jsonl(tmp_path / "s.jsonl", tracer)
    assert len((tmp_path / "s.jsonl").read_text().splitlines()) == 1
    assert "empty" in flame_report(tracer)
    op_wall_report(tracer)  # no ops at all: must not raise
    flame = write_folded_flame(tmp_path / "f.folded", tracer)
    for line in flame.read_text().splitlines():
        frames, value = line.rsplit(" ", 1)
        assert frames and int(value) >= 0


def test_empty_trace_with_empty_worker_rounds():
    tracer = _empty_trace()
    assert chrome_trace_events(tracer, []) == chrome_trace_events(tracer, None)


# -- fallback-only trace ------------------------------------------------------


def test_fallback_only_trace_exports_and_reports(tmp_path):
    tracer, registry = _fallback_only_trace()
    events = chrome_trace_events(tracer)
    assert sum(e["ph"] == "X" for e in events) == 2  # root on both tracks
    report = op_wall_report(tracer)
    assert "backend.fallback" in report
    health = backend_health_report(registry)
    assert "fallback (worker-death)" in health
    assert "serial rounds (fallback)" in health
    doc = to_chrome_trace(tracer, metrics=registry)
    counters = doc["otherData"]["metrics"]["counters"]
    assert counters["primitive.backend.fallback.elements"] == 1


# -- sharded worker lanes vs golden shape -------------------------------------


def test_sharded_trace_shape_matches_golden():
    tracer, worker_rounds = _synthetic_sharded_trace()
    shape = _shape(chrome_trace_events(tracer, worker_rounds))
    golden = json.loads(GOLDEN.read_text())
    assert shape == golden


def test_sharded_lane_events_place_on_parent_clock():
    tracer, worker_rounds = _synthetic_sharded_trace()
    events = chrome_trace_events(tracer, worker_rounds)
    lanes = [e for e in events if e["ph"] == "X" and e.get("tid", 0) >= 1]
    assert len(lanes) == 4  # 2 rounds x 2 workers
    for e in lanes:
        assert e["pid"] == 0  # wall-clock track only
        assert e["ts"] >= 0.0
        assert e["dur"] == 500_000 / 1e3
        assert e["args"]["arcs"] == 256
    # a round's t0 before the root's wall_start clamps to lane origin
    early = dict(worker_rounds[0], t0=-5.0)
    clamped = chrome_trace_events(tracer, [early])
    assert all(
        e["ts"] == 0.0
        for e in clamped
        if e["ph"] == "X" and e.get("tid", 0) >= 1
    )
