"""The perf ledger: records, baselines, tolerance bands, the check gate."""

import json

import pytest

from repro.obs import ledger


def _bench_doc(sssp_work=1000, wall=0.5, speedup=2.0, bit_exact=True):
    return {
        "experiments": {
            "er": {
                "bit_exact": bit_exact,
                "sssp": {"work": sssp_work, "wall_s": wall, "speedup": speedup},
                "note": "strings are not metrics",
            }
        }
    }


@pytest.fixture
def bench_dir(tmp_path):
    d = tmp_path / "benchmarks"
    d.mkdir()
    (d / "BENCH_demo.json").write_text(json.dumps(_bench_doc()))
    return d


def test_flatten_keeps_scalars_drops_strings():
    flat = ledger.flatten_metrics(_bench_doc()["experiments"]["er"])
    assert flat == {
        "bit_exact": True,
        "sssp.work": 1000.0,
        "sssp.wall_s": 0.5,
        "sssp.speedup": 2.0,
    }
    assert isinstance(flat["bit_exact"], bool)


def test_scan_bench_dir_skips_history(bench_dir):
    (bench_dir / "BENCH_history.jsonl").write_text("{}\n")
    pairs = ledger.scan_bench_dir(bench_dir)
    assert [bid for bid, _ in pairs] == ["demo:er"]


def test_append_load_roundtrip_and_baseline(tmp_path):
    history = tmp_path / "h.jsonl"
    r1 = ledger.make_record("demo:er", {"x": 1.0}, host="h1", sha="a", timestamp=1.0)
    r2 = ledger.make_record("demo:er", {"x": 2.0}, host="h2", sha="b", timestamp=2.0)
    r3 = ledger.make_record("other:g", {"y": 3.0}, host="h1", sha="b", timestamp=2.0)
    assert ledger.append_records(history, [r1]) == 1
    assert ledger.append_records(history, [r2, r3]) == 2
    records = ledger.load_history(history)
    assert len(records) == 3
    # latest wins; same-host preferred over strictly-newer other-host
    assert ledger.baseline_for(records, "demo:er")["metrics"]["x"] == 2.0
    assert ledger.baseline_for(records, "demo:er", host="h1")["metrics"]["x"] == 1.0
    assert ledger.baseline_for(records, "missing:id") is None
    assert ledger.load_history(tmp_path / "absent.jsonl") == []


def test_tolerance_bands():
    base = {"sssp.work": 1000.0, "sssp.wall_s": 0.5, "sssp.speedup": 2.0,
            "bit_exact": True}
    # inside every band: no regressions
    ok = {"sssp.work": 1100.0, "sssp.wall_s": 0.9, "sssp.speedup": 1.4,
          "bit_exact": True}
    assert ledger.compare_metrics("b", ok, base) == []
    # work beyond 1.25x
    bad = dict(ok, **{"sssp.work": 1300.0})
    regs = ledger.compare_metrics("b", bad, base)
    assert [r.metric for r in regs] == ["sssp.work"]
    # wall beyond 2.5x AND the absolute floor
    regs = ledger.compare_metrics("b", dict(ok, **{"sssp.wall_s": 1.5}), base)
    assert [r.metric for r in regs] == ["sssp.wall_s"]
    # tiny absolute wall growth stays under the noise floor even at >2.5x
    micro = {"sssp.wall_s": 0.004}
    assert ledger.compare_metrics("b", {"sssp.wall_s": 0.011}, micro) == []
    # speedup halved from a real baseline
    regs = ledger.compare_metrics("b", dict(ok, **{"sssp.speedup": 0.9}), base)
    assert [r.metric for r in regs] == ["sssp.speedup"]
    # speedup collapse from a non-speedup baseline is not flagged
    assert ledger.compare_metrics(
        "b", {"sssp.speedup": 0.4}, {"sssp.speedup": 1.1}
    ) == []
    # boolean flip
    regs = ledger.compare_metrics("b", dict(ok, **{"bit_exact": False}), base)
    assert [r.metric for r in regs] == ["bit_exact"]
    # metrics on only one side are ignored
    assert ledger.compare_metrics("b", {"new": 9.0}, {"old": 1.0}) == []


def test_check_flags_perturbed_metric(bench_dir):
    history = ledger.history_path(bench_dir)
    # first check: nothing recorded yet -> nothing compared
    regressions, compared, missing = ledger.check(bench_dir)
    assert (regressions, compared) == ([], 0) and missing == ["demo:er"]
    # seed the baseline from the current file
    records = [
        ledger.make_record(bid, metrics)
        for bid, metrics in ledger.scan_bench_dir(bench_dir)
    ]
    ledger.append_records(history, records)
    regressions, compared, missing = ledger.check(bench_dir)
    assert (regressions, compared, missing) == ([], 1, [])
    # perturb one metric far beyond tolerance -> flagged
    (bench_dir / "BENCH_demo.json").write_text(
        json.dumps(_bench_doc(sssp_work=100_000))
    )
    regressions, compared, _ = ledger.check(bench_dir)
    assert compared == 1 and len(regressions) == 1
    assert regressions[0].metric == "sssp.work"
    assert "demo:er" in str(regressions[0])


def test_history_path_env_override(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_LEDGER_PATH", raising=False)
    assert ledger.history_path("benchmarks").name == "BENCH_history.jsonl"
    monkeypatch.setenv("REPRO_LEDGER_PATH", str(tmp_path / "elsewhere.jsonl"))
    assert ledger.history_path("benchmarks") == tmp_path / "elsewhere.jsonl"


def test_host_fingerprint_and_sha_shapes():
    fp = ledger.host_fingerprint()
    assert "c-py" in fp and " " not in fp
    sha = ledger.git_sha()
    assert sha == "unknown" or len(sha) == 40
