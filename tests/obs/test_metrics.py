"""MetricsRegistry: counters, histograms, and per-primitive aggregation."""

import numpy as np
import pytest

from repro.obs.metrics import Counter, Histogram, MetricsRegistry
from repro.pram.cost import CostModel
from repro.pram.machine import PRAM


def test_counter_is_monotone():
    c = Counter("x")
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_histogram_log2_buckets():
    h = Histogram("sizes")
    for v in (0, 1, 2, 3, 4, 1000):
        h.observe(v)
    # {0,1} -> bucket 0; 2 -> 1; {3,4} -> 2; 1000 -> 10
    assert h.buckets == {0: 2, 1: 1, 2: 2, 10: 1}
    assert h.count == 6
    assert h.min == 0 and h.max == 1000
    assert h.mean == pytest.approx(1010 / 6)
    with pytest.raises(ValueError):
        h.observe(-1)


def test_histogram_to_dict_empty():
    d = Histogram("e").to_dict()
    assert d["count"] == 0 and d["min"] is None and d["max"] is None


def test_registry_getters_are_idempotent():
    r = MetricsRegistry()
    assert r.counter("a") is r.counter("a")
    assert r.gauge("g") is r.gauge("g")
    assert r.histogram("h") is r.histogram("h")


def test_on_charge_feeds_cost_and_primitive_counters():
    c = CostModel()
    r = MetricsRegistry.attach(c)
    c.charge(work=10, depth=2, label="scan")
    c.charge(work=5, depth=1)  # unlabeled: run totals only
    r.detach(c)
    assert r.counter("cost.charges").value == 2
    assert r.counter("cost.work").value == 15
    assert r.counter("cost.depth").value == 3
    assert r.counter("primitive.scan.work").value == 10
    assert "primitive..work" not in r.counters


def test_on_traffic_feeds_cells_and_size_histogram():
    c = CostModel()
    r = MetricsRegistry.attach(c)
    c.traffic("scan", elements=8, reads=16, writes=8)
    c.traffic("scan", elements=4, reads=8, writes=4)
    r.detach(c)
    assert r.counter("primitive.scan.calls").value == 2
    assert r.counter("primitive.scan.elements").value == 12
    assert r.counter("primitive.scan.cells_read").value == 24
    assert r.counter("primitive.scan.cells_written").value == 12
    assert r.histogram("primitive.scan.size").count == 2


def test_phase_counter():
    c = CostModel()
    r = MetricsRegistry.attach(c)
    with c.phase("a"):
        with c.phase("b"):
            pass
    assert r.counter("cost.phases").value == 2


def test_primitives_report_traffic_through_pram():
    pram = PRAM()
    r = MetricsRegistry.attach(pram.cost)
    pram.prefix_sum(np.ones(16))
    pram.sort(np.arange(8)[::-1].copy())
    pram.pointer_jump(np.concatenate([[0], np.arange(7)]))
    labels = r.primitive_labels()
    assert "scan" in labels and "sort" in labels and "pointer_jump" in labels
    assert r.counter("primitive.scan.cells_read").value > 0
    assert r.counter("primitive.sort.cells_written").value > 0
    # metrics totals agree with the cost model
    assert r.counter("cost.work").value == pram.cost.work
    assert r.counter("cost.depth").value == pram.cost.depth


def test_snapshot_shape():
    c = CostModel()
    r = MetricsRegistry.attach(c)
    c.charge(work=3, depth=1, label="x")
    c.traffic("x", elements=3, reads=3, writes=3)
    snap = r.snapshot()
    assert set(snap) == {"counters", "gauges", "histograms"}
    assert snap["counters"]["primitive.x.calls"] == 1
    assert snap["histograms"]["primitive.x.size"]["count"] == 1


def test_wall_ns_delta_attribution_with_injected_clock():
    ticks = iter(range(0, 1000, 10))  # 0, 10, 20, ... ns
    c = CostModel()
    r = MetricsRegistry.attach(c, clock_ns=lambda: next(ticks))
    c.traffic("a", elements=1, reads=1, writes=1)  # claims 10ns since init
    c.traffic("b", elements=1, reads=1, writes=1)  # claims the next 10ns
    c.traffic("a", elements=1, reads=1, writes=1)
    r.detach(c)
    assert r.counter("primitive.a.wall_ns").value == 20
    assert r.counter("primitive.b.wall_ns").value == 10


def test_wall_ns_resets_at_phase_boundaries():
    ticks = iter([0, 100, 105, 200])  # attach, phase-enter, traffic, (unused)
    c = CostModel()
    r = MetricsRegistry.attach(c, clock_ns=lambda: next(ticks))
    with c.phase("p"):
        c.traffic("a", elements=1, reads=0, writes=0)
    # only the 5ns since phase entry, not the 105ns since attach
    assert r.counter("primitive.a.wall_ns").value == 5
