"""Per-scale profiler: attribution tables and the folded flame exporter."""

import numpy as np

from repro.graphs.generators import erdos_renyi
from repro.hopsets.multi_scale import build_hopset
from repro.hopsets.params import HopsetParams
from repro.obs.profile import (
    PHASE_KINDS,
    _kind_of,
    _scale_of,
    profile_report,
    write_folded_flame,
)
from repro.obs.tracer import SpanTracer
from repro.pram.cost import CostModel
from repro.pram.machine import PRAM


def _traced_build():
    g = erdos_renyi(48, 0.1, seed=2)
    pram = PRAM()
    tracer = SpanTracer.attach(pram.cost, root_name="build")
    build_hopset(g, HopsetParams(beta=6), pram)
    tracer.finish()
    return tracer


def test_scale_and_kind_classification():
    assert _scale_of("scale3/phase0/detect") == "scale3"
    assert _scale_of("sssp_query") == "(top)"
    assert _kind_of("scale3/phase0/detect/explore") == "detect"
    assert _kind_of("scale3/phase1/ruling/bit2") == "ruling"
    assert _kind_of("sssp_query") == "sssp_query"
    assert set(PHASE_KINDS) == {"detect", "ruling", "supercluster", "interconnect"}


def test_profile_report_attributes_scales_and_phases():
    tracer = _traced_build()
    report = profile_report(tracer, top=6)
    assert "per-scale (inclusive)" in report
    assert "per-scale phase wall (exclusive)" in report
    assert "hot primitives (top 6" in report
    # the build opened at least one scale span and the known phase kinds
    assert "scale" in report and "ruling" in report and "detect" in report
    # the detect explore/aggregate subphases fold under 'detect'
    assert "explore" not in report.split("hot primitives")[0]


def test_profile_report_empty_trace():
    c = CostModel()
    tracer = SpanTracer.attach(c, root_name="nothing")
    tracer.finish()
    assert profile_report(tracer) == "(empty trace)"


def test_folded_flame_totals_match_root_wall(tmp_path):
    tracer = _traced_build()
    path = write_folded_flame(tmp_path / "build.folded", tracer)
    total = 0
    stacks = set()
    for line in path.read_text().splitlines():
        frames, value = line.rsplit(" ", 1)
        # duplicate stacks are fine (flamegraph sums them): re-entered phases
        assert int(value) > 0
        stacks.add(frames)
        assert frames.startswith("build")
        total += int(value)
    root_ns = tracer.root.wall * 1e9
    # residual lines make the folded total ~the root wall (rounding slack)
    assert abs(total - root_ns) <= max(0.01 * root_ns, 1e4)
    # primitive labels appear as leaf frames under their phase stacks
    assert any(";detect;" in s or s.endswith("detect") for s in stacks)


def test_folded_flame_deterministic_shape(tmp_path):
    """Same synthetic trace -> same folded stacks (values aside)."""
    def run():
        ticks = iter(i * 0.001 for i in range(1, 100))
        c = CostModel()
        tracer = SpanTracer.attach(c, clock=lambda: next(ticks), root_name="r")
        with c.phase("a"):
            c.charge(work=5, depth=1, label="scan")
            c.traffic("scan", elements=10)
        tracer.finish()
        return tracer

    p1 = write_folded_flame(tmp_path / "one.folded", run())
    p2 = write_folded_flame(tmp_path / "two.folded", run())
    stacks1 = [ln.rsplit(" ", 1)[0] for ln in p1.read_text().splitlines()]
    stacks2 = [ln.rsplit(" ", 1)[0] for ln in p2.read_text().splitlines()]
    assert stacks1 == stacks2
    assert "r;a;scan" in stacks1
