"""SpanTracer: span tree construction, inclusive/self accounting, coverage."""

from repro.graphs.generators import erdos_renyi
from repro.hopsets.multi_scale import build_hopset
from repro.hopsets.params import HopsetParams
from repro.obs.tracer import SpanTracer
from repro.pram.cost import CostModel
from repro.pram.machine import PRAM


def _fake_clock():
    t = [0.0]

    def tick():
        t[0] += 1.0
        return t[0]

    return tick


def test_span_tree_mirrors_phase_nesting():
    c = CostModel()
    tracer = SpanTracer.attach(c)
    with c.phase("outer"):
        c.charge(work=5, depth=1)
        with c.phase("inner"):
            c.charge(work=3, depth=1)
    root = tracer.finish()
    assert [s.name for s in root.walk()] == ["trace", "outer", "inner"]
    outer, inner = root.children[0], root.children[0].children[0]
    assert (outer.work, outer.depth) == (8, 2)  # inclusive
    assert (outer.self_work, outer.self_depth) == (5, 1)  # exclusive
    assert (inner.work, inner.self_work) == (3, 3)
    assert outer.level == 1 and inner.level == 2


def test_root_absorbs_unphased_charges():
    c = CostModel()
    tracer = SpanTracer.attach(c)
    c.charge(work=10, depth=1)
    with c.phase("p"):
        c.charge(work=30, depth=1)
    root = tracer.finish()
    assert root.work == 40
    assert root.self_work == 10
    assert tracer.coverage() == 0.75


def test_coverage_is_one_when_everything_is_phased():
    c = CostModel()
    tracer = SpanTracer.attach(c)
    with c.phase("p"):
        c.charge(work=30, depth=1)
    assert tracer.finish().work == 30
    assert tracer.coverage() == 1.0


def test_coverage_of_empty_trace_is_one():
    c = CostModel()
    tracer = SpanTracer.attach(c)
    tracer.finish()
    assert tracer.coverage() == 1.0


def test_finish_closes_open_spans_and_detaches():
    c = CostModel()
    tracer = SpanTracer.attach(c)
    cm = c.phase("left-open")
    cm.__enter__()
    c.charge(work=2, depth=1)
    root = tracer.finish()
    assert all(s.closed for s in root.walk())
    assert not c.has_subscribers
    # post-finish charges do not disturb the frozen tree
    c.charge(work=100, depth=1)
    assert root.work == 2
    cm.__exit__(None, None, None)


def test_finish_is_idempotent():
    c = CostModel()
    tracer = SpanTracer.attach(c)
    c.charge(work=1, depth=1)
    assert tracer.finish() is tracer.finish()


def test_phase_opened_before_attach_is_ignored_on_exit():
    c = CostModel()
    with c.phase("pre-existing"):
        tracer = SpanTracer.attach(c)
        c.charge(work=4, depth=1)
    # the exit of "pre-existing" must not pop the tracer's root
    root = tracer.finish()
    assert root.name == "trace"
    assert root.self_work == 4


def test_ops_aggregate_charges_and_traffic():
    c = CostModel()
    tracer = SpanTracer.attach(c)
    c.charge(work=6, depth=1, label="scan")
    c.charge(work=4, depth=1, label="scan")
    c.traffic("scan", elements=10, reads=20, writes=10)
    root = tracer.finish()
    stats = root.ops["scan"]
    assert (stats.calls, stats.work, stats.depth) == (2, 10, 2)
    assert (stats.elements, stats.reads, stats.writes) == (10, 20, 10)


def test_wall_clock_uses_injected_clock():
    c = CostModel()
    tracer = SpanTracer.attach(c, clock=_fake_clock())
    with c.phase("p"):
        c.charge(work=1, depth=1)
    root = tracer.finish()
    assert root.wall > 0
    assert root.children[0].wall > 0


def test_real_build_trace_covers_all_work_with_scale_spans():
    g = erdos_renyi(48, 0.1, seed=11)
    pram = PRAM()
    tracer = SpanTracer.attach(pram.cost)
    build_hopset(g, HopsetParams(beta=6), pram)
    root = tracer.finish()
    assert root.work == pram.cost.work
    assert tracer.coverage() >= 0.95
    scale_spans = [s for s in root.children if s.name.startswith("scale")]
    assert scale_spans, [s.name for s in root.children]
    # per-scale spans carry the detect/ruling/... children of single_scale
    assert any(span.children for span in scale_spans)


def test_tracing_never_perturbs_accounting():
    """Observability guard: the same run charges identical work/depth with
    and without a tracer attached, and leaves no residue after finish()."""
    g = erdos_renyi(32, 0.15, seed=2)
    plain = PRAM()
    build_hopset(g, HopsetParams(beta=6), plain)
    traced = PRAM()
    tracer = SpanTracer.attach(traced.cost)
    build_hopset(g, HopsetParams(beta=6), traced)
    tracer.finish()
    assert traced.cost.work == plain.cost.work
    assert traced.cost.depth == plain.cost.depth
    assert not plain.cost.steps and not traced.cost.steps
    assert not traced.cost.has_subscribers


def test_span_to_dict_is_json_friendly():
    import json

    c = CostModel()
    tracer = SpanTracer.attach(c)
    with c.phase("p"):
        c.charge(work=2, depth=1, label="x")
        c.traffic("x", elements=2, reads=4, writes=2)
    root = tracer.finish()
    blob = json.dumps([s.to_dict() for s in root.walk()])
    assert "cells_read" in blob and '"p"' in blob


def test_op_wall_ns_delta_attribution():
    c = CostModel()
    tracer = SpanTracer.attach(c, clock=_fake_clock())  # ticks 1s at a time
    with c.phase("p"):
        c.traffic("a", elements=1, reads=0, writes=0)
        c.traffic("b", elements=1, reads=0, writes=0)
    root = tracer.finish()
    span = root.children[0]
    # each traffic event claims the 1s tick since the previous event
    assert span.ops["a"].wall_ns == 10**9
    assert span.ops["b"].wall_ns == 10**9
    assert span.to_dict()["ops"]["a"]["wall_ns"] == 10**9
