"""The zero-overhead claim, measured: disabled obs must cost (almost) nothing.

Two subprocess arms run the identical E4-style SSSP workload
(``layered_hop_graph(48, 3)``, the hopset-query hot loop):

* **pristine** — ``repro.obs`` is never imported (asserted inside the
  subprocess via ``sys.modules``), possible only because
  ``repro/__init__`` resolves ``SpanTracer``/``MetricsRegistry`` lazily;
* **armed-but-idle** — ``repro.obs`` is imported and a tracer+registry are
  attached to a *different* machine's cost model, so the obs code is hot
  in the process but the measured machine has no subscribers.

Best-of-N timing with retries absorbs scheduler noise; the armed arm must
land within 3 % of pristine (guards against accidental always-on hooks).
"""

import json
import subprocess
import sys
from pathlib import Path

SRC = str(Path(__file__).resolve().parents[2] / "src")

WORKLOAD = r"""
import json, sys, time

mode = sys.argv[1]
assert mode in ("pristine", "armed")

from repro.graphs.generators import layered_hop_graph
from repro.hopsets.multi_scale import build_hopset
from repro.hopsets.params import HopsetParams
from repro.pram.machine import PRAM
from repro.sssp.sssp import approximate_sssp_with_hopset

if mode == "armed":
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracer import SpanTracer
    decoy = PRAM()  # hooks attach to a machine the workload never uses
    SpanTracer.attach(decoy.cost)
    MetricsRegistry.attach(decoy.cost)
else:
    bad = [m for m in sys.modules if m.startswith("repro.obs")]
    assert not bad, f"obs imported in the pristine arm: {bad}"

g = layered_hop_graph(48, 3, seed=4001)
H, _ = build_hopset(g, HopsetParams(epsilon=0.25, beta=8))

def run():
    pram = PRAM()
    approximate_sssp_with_hopset(g, H, 0, pram=pram, hop_budget=17)

run()  # warm caches / pools
best = min(
    (lambda t0: (run(), time.perf_counter() - t0)[1])(time.perf_counter())
    for _ in range(7)
)
if mode == "pristine":
    bad = [m for m in sys.modules if m.startswith("repro.obs")]
    assert not bad, f"obs leaked into the pristine arm: {bad}"
print(json.dumps({"mode": mode, "best_s": best}))
"""


def _arm(mode: str) -> float:
    out = subprocess.run(
        [sys.executable, "-c", WORKLOAD, mode],
        capture_output=True,
        text=True,
        timeout=300,
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
    )
    assert out.returncode == 0, f"{mode} arm failed:\n{out.stderr}"
    payload = json.loads(out.stdout.strip().splitlines()[-1])
    assert payload["mode"] == mode
    return payload["best_s"]


def test_idle_obs_within_three_percent_of_never_imported():
    ratios = []
    for _ in range(4):  # retries absorb one-off scheduler noise
        pristine = _arm("pristine")
        armed = _arm("armed")
        ratios.append(armed / pristine)
        if ratios[-1] <= 1.03:
            break
    assert min(ratios) <= 1.03, (
        "armed-but-idle obs cost more than 3% over never-imported: "
        f"ratios {[f'{r:.3f}' for r in ratios]}"
    )


def test_lazy_init_keeps_obs_unimported():
    """`import repro` alone must not pull repro.obs in (PEP 562 laziness)."""
    code = (
        "import sys, repro;"
        "bad=[m for m in sys.modules if m.startswith('repro.obs')];"
        "assert not bad, bad;"
        "from repro import SpanTracer;"
        "assert any(m.startswith('repro.obs') for m in sys.modules);"
        "print('ok')"
    )
    out = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        timeout=60,
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
    )
    assert out.returncode == 0, out.stderr
    assert out.stdout.strip() == "ok"
