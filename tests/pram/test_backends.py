"""Unit tests for the execution-backend subsystem (docs/backends.md).

Covers spec parsing and singleton resolution, shard partitioning, the
deterministic tree min-combine against a straight ``reduceat`` reference
(including straddling segments and value ties), the ``min_arcs``
in-process guard, and the graceful-degradation path: a worker killed
mid-computation must trip permanent serial fallback and still produce
bit-correct distances.
"""

import os
import signal

import numpy as np
import pytest

from repro.graphs.generators import erdos_renyi
from repro.pram.backends import (
    ExecutionBackend,
    SerialBackend,
    ShardedBackend,
    parse_backend_spec,
    resolve_backend,
    shard_bounds,
    tree_min_combine,
)
from repro.pram.backends.base import _SINGLETONS
from repro.pram.errors import InvalidStepError
from repro.pram.machine import PRAM
from repro.sssp.bellman_ford import bellman_ford

_INT64_MAX = np.iinfo(np.int64).max


# -- spec parsing / resolution -----------------------------------------------


@pytest.mark.parametrize(
    "spec, expected",
    [
        ("", ("serial", None)),
        ("serial", ("serial", None)),
        ("SERIAL", ("serial", None)),
        ("sharded", ("sharded", None)),
        ("sharded:1", ("sharded", 1)),
        ("sharded:8", ("sharded", 8)),
        (" sharded:2 ", ("sharded", 2)),
    ],
)
def test_parse_backend_spec_accepts(spec, expected):
    assert parse_backend_spec(spec) == expected


@pytest.mark.parametrize("spec", ["gpu", "sharded:", "sharded:zero", "sharded:0", "sharded:-2"])
def test_parse_backend_spec_rejects(spec):
    with pytest.raises(InvalidStepError):
        parse_backend_spec(spec)


def test_resolve_backend_passthrough_and_singletons(monkeypatch):
    be = SerialBackend()
    assert resolve_backend(be) is be  # instances pass through untouched
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    assert resolve_backend(None).name == "serial"
    monkeypatch.setenv("REPRO_BACKEND", "serial")
    assert resolve_backend(None) is resolve_backend("serial")  # one singleton
    with pytest.raises(InvalidStepError):
        resolve_backend("warp-drive")


def test_resolve_backend_env_sharded(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "sharded:2")
    try:
        be = resolve_backend(None)
        assert isinstance(be, ShardedBackend)
        assert be.workers == 2
        assert be is resolve_backend("sharded:2")
        assert be is not resolve_backend("sharded:3")
    finally:
        for key in ("sharded:2", "sharded:3"):
            cached = _SINGLETONS.pop(key, None)
            if cached is not None:
                cached.close()


def test_invalid_worker_count_rejected():
    with pytest.raises(InvalidStepError):
        ShardedBackend(workers=0)


def test_describe_mentions_state():
    assert SerialBackend().describe() == "serial"
    be = ShardedBackend(workers=2)
    assert "workers=2" in be.describe() and "ok" in be.describe()
    be.close()


# -- shard partitioning ------------------------------------------------------


def test_shard_bounds_cover_and_balance():
    for n, shards in [(10, 3), (4096, 4), (7, 7), (5, 9), (1, 4)]:
        bounds = shard_bounds(n, shards)
        assert bounds[0][0] == 0 and bounds[-1][1] == n
        assert all(lo < hi for lo, hi in bounds)  # non-empty
        assert all(b[0] == a[1] for a, b in zip(bounds, bounds[1:]))  # contiguous
        sizes = [hi - lo for lo, hi in bounds]
        assert max(sizes) - min(sizes) <= 1  # arc-balanced
        assert len(bounds) == min(n, shards)
    assert shard_bounds(0, 4) == []


# -- tree min-combine vs reduceat reference ----------------------------------


def _shard_partials(cand, tails, seg_start, bounds):
    """Emulate the per-worker computation on each contiguous arc range."""
    parts = []
    for lo, hi in bounds:
        seg_lo = int(np.searchsorted(seg_start, lo, side="right")) - 1
        seg_hi = int(np.searchsorted(seg_start, hi, side="left"))
        local_starts = np.maximum(seg_start[seg_lo:seg_hi], lo) - lo
        c = cand[lo:hi]
        mn = np.minimum.reduceat(c, local_starts)
        seg_len = np.diff(np.concatenate((local_starts, [hi - lo])))
        rep = np.repeat(mn, seg_len)
        maskpay = np.where(c == rep, tails[lo:hi], _INT64_MAX)
        py = np.minimum.reduceat(maskpay, local_starts)
        parts.append((seg_lo, mn, py))
    return parts


@pytest.mark.parametrize("shards", [1, 2, 3, 5, 8])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_tree_min_combine_matches_reduceat(shards, seed):
    rng = np.random.default_rng(seed)
    n = 200
    # small integer-valued candidates force plenty of exact ties, and
    # random segment cuts put boundaries inside segments (straddling)
    cand = rng.integers(0, 5, size=n).astype(np.float64)
    tails = rng.integers(0, 50, size=n).astype(np.int64)
    k = 17
    cuts = np.sort(rng.choice(np.arange(1, n), size=k - 1, replace=False))
    seg_start = np.concatenate(([0], cuts)).astype(np.int64)

    ref_mn = np.minimum.reduceat(cand, seg_start)
    seg_len = np.diff(np.concatenate((seg_start, [n])))
    ref_mask = np.where(cand == np.repeat(ref_mn, seg_len), tails, _INT64_MAX)
    ref_py = np.minimum.reduceat(ref_mask, seg_start)

    parts = _shard_partials(cand, tails, seg_start, shard_bounds(n, shards))
    lo, mn, py = tree_min_combine(parts)
    assert lo == 0
    assert np.array_equal(mn, ref_mn)
    assert np.array_equal(py, ref_py)


def test_tree_min_combine_single_part_copies():
    mn = np.array([1.0, 2.0])
    py = np.array([3, 4], dtype=np.int64)
    _, out_mn, out_py = tree_min_combine([(0, mn, py)])
    assert not np.shares_memory(out_mn, mn) and not np.shares_memory(out_py, py)


def test_tree_min_combine_rejects_gaps():
    a = (0, np.array([1.0]), np.array([0], dtype=np.int64))
    b = (5, np.array([1.0]), np.array([0], dtype=np.int64))
    with pytest.raises(InvalidStepError):
        tree_min_combine([a, b])
    with pytest.raises(InvalidStepError):
        tree_min_combine([])


# -- backend behaviour on a live machine -------------------------------------


def _graph():
    return erdos_renyi(120, 0.08, seed=11)


def _serial_reference(g):
    pram = PRAM(backend=SerialBackend())
    res = bellman_ford(pram, g, 0, g.n - 1)
    return res, pram.cost.snapshot()


def test_min_arcs_guard_keeps_small_rounds_in_process():
    g = _graph()
    ref, _ = _serial_reference(g)
    be = ShardedBackend(workers=2, min_arcs=10**9)
    try:
        res = bellman_ford(PRAM(backend=be), g, 0, g.n - 1)
        assert np.array_equal(ref.dist, res.dist)
        assert be.sharded_rounds == 0 and be.serial_rounds > 0
        assert not be._procs  # the pool was never spawned
    finally:
        be.close()


def test_sharded_rounds_engage_and_match():
    g = _graph()
    ref, ref_cost = _serial_reference(g)
    be = ShardedBackend(workers=2, min_arcs=1)
    try:
        pram = PRAM(backend=be)
        res = bellman_ford(pram, g, 0, g.n - 1)
        assert np.array_equal(ref.dist, res.dist)
        assert np.array_equal(ref.parent, res.parent)
        assert (pram.cost.work, pram.cost.depth) == (ref_cost.work, ref_cost.depth)
        assert be.sharded_rounds > 0 and not be.failed
    finally:
        be.close()


def test_worker_death_degrades_to_serial_with_correct_answer():
    """SIGKILL a pool worker mid-run: permanent fallback, bit-correct output."""
    g = _graph()
    ref, _ = _serial_reference(g)
    be = ShardedBackend(workers=2, min_arcs=1, round_timeout=10.0)
    try:
        pram = PRAM(backend=be)
        warm = bellman_ford(pram, g, 0, 2, early_exit=False)  # spin up the pool
        assert be.sharded_rounds > 0 and be._procs
        victim = be._procs[0]
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=10.0)
        assert not victim.is_alive()

        res = bellman_ford(PRAM(backend=be), g, 0, g.n - 1)
        assert be.failed and be.failure_reason
        assert "failed" in be.describe()
        assert np.array_equal(ref.dist, res.dist)
        assert np.array_equal(ref.parent, res.parent)
        assert not be._procs  # pool torn down

        # and the backend stays serviceable (serial) afterwards
        again = bellman_ford(PRAM(backend=be), g, 0, g.n - 1)
        assert np.array_equal(ref.dist, again.dist)
        assert np.array_equal(warm.dist[: g.n], warm.dist[: g.n])  # warm-up sanity
    finally:
        be.close()


def test_two_graphs_register_two_plans():
    g1 = _graph()
    g2 = erdos_renyi(90, 0.1, seed=23)
    be = ShardedBackend(workers=2, min_arcs=1)
    try:
        r1 = bellman_ford(PRAM(backend=be), g1, 0, g1.n - 1)
        r2 = bellman_ford(PRAM(backend=be), g2, 0, g2.n - 1)
        assert len(be._plans) >= 2
        ref1, _ = _serial_reference(g1)
        pram = PRAM(backend=SerialBackend())
        ref2 = bellman_ford(pram, g2, 0, g2.n - 1)
        assert np.array_equal(ref1.dist, r1.dist)
        assert np.array_equal(ref2.dist, r2.dist)
    finally:
        be.close()


def test_close_is_idempotent():
    be = ShardedBackend(workers=1, min_arcs=1)
    g = erdos_renyi(60, 0.1, seed=5)
    bellman_ford(PRAM(backend=be), g, 0, g.n - 1)
    be.close()
    be.close()
    assert not be._procs and not be._plans


def test_base_backend_contract():
    """The base class is the serial semantics; SerialBackend only renames."""
    base = ExecutionBackend()
    indptr = np.array([0, 2, 3, 3], dtype=np.int64)
    frontier = np.array([0, 1], dtype=np.int64)
    slots, arcs = base.gather_csr(indptr, frontier)
    assert np.array_equal(slots, [0, 0, 1])
    assert np.array_equal(arcs, [0, 1, 2])
    base.close()  # no-op
    assert base.describe() == "base"
