"""CostModel: charging, phases, Brent scheduling."""

import pytest

from repro.pram.cost import CostHook, CostModel, CostSnapshot
from repro.pram.errors import InvalidStepError


def test_charge_accumulates_work_and_depth():
    c = CostModel()
    c.charge(work=10, depth=2)
    c.charge(work=5, depth=1)
    assert c.work == 15
    assert c.depth == 3


def test_zero_depth_charge_allowed():
    c = CostModel()
    c.charge(work=7, depth=0)
    assert c.work == 7
    assert c.depth == 0


def test_negative_charge_rejected():
    c = CostModel()
    with pytest.raises(InvalidStepError):
        c.charge(work=-1)
    with pytest.raises(InvalidStepError):
        c.charge(work=1, depth=-2)


def test_snapshot_delta():
    c = CostModel()
    c.charge(work=4, depth=1)
    a = c.snapshot()
    c.charge(work=6, depth=2)
    delta = c.snapshot() - a
    assert delta == CostSnapshot(work=6, depth=2)


def test_brent_time_bound():
    c = CostModel()
    c.charge(work=1000, depth=10)
    # T_p <= W/p + D
    assert c.time_on(1) == 1010
    assert c.time_on(100) == 20
    assert c.time_on(10**9) == 11  # ceil(1000/1e9)=1


def test_time_on_requires_positive_processors():
    c = CostModel()
    with pytest.raises(InvalidStepError):
        c.time_on(0)


def test_phase_attribution_is_inclusive():
    c = CostModel()
    with c.phase("outer"):
        c.charge(work=5, depth=1)
        with c.phase("inner"):
            c.charge(work=3, depth=1)
    assert c.phase_totals["outer"].work == 8
    assert c.phase_totals["inner"].work == 3
    assert c.phase_totals["outer"].depth == 2


def test_phase_stack_unwinds_on_exception():
    c = CostModel()
    with pytest.raises(RuntimeError):
        with c.phase("p"):
            raise RuntimeError("boom")
    c.charge(work=1)
    # the charge after the exception is not attributed to the dead phase
    assert c.phase_totals.get("p") is None


def test_record_steps():
    c = CostModel(record_steps=True)
    c.charge(work=2, depth=1, label="a")
    c.charge(work=3, depth=1, label="b")
    assert [s.label for s in c.steps] == ["a", "b"]
    assert [s.work for s in c.steps] == [2, 3]


def test_reset_clears_everything():
    c = CostModel(record_steps=True)
    with c.phase("x"):
        c.charge(work=9, depth=3)
    c.reset()
    assert c.work == 0 and c.depth == 0
    assert not c.steps and not c.phase_totals
    assert not c.phase_self_totals


def test_reentrant_phase_name_counts_once():
    # A phase name open twice on the stack (a/b/a) must attribute each
    # charge to its inclusive total exactly once, not once per occurrence.
    c = CostModel()
    with c.phase("a"):
        with c.phase("b"):
            with c.phase("a"):
                c.charge(work=5, depth=2)
    assert c.phase_totals["a"] == CostSnapshot(5, 2)
    assert c.phase_totals["b"] == CostSnapshot(5, 2)


def test_reentrant_phase_self_totals_attribute_to_inner():
    c = CostModel()
    with c.phase("a"):
        c.charge(work=1, depth=1)
        with c.phase("a"):
            c.charge(work=3, depth=1)
    assert c.phase_totals["a"] == CostSnapshot(4, 2)
    # self rows: outer keeps its own charge, inner occurrence's charge
    # folds into the same name's exclusive row
    assert c.phase_self_totals["a"] == CostSnapshot(4, 2)


def test_phase_self_totals_are_exclusive():
    c = CostModel()
    with c.phase("outer"):
        c.charge(work=5, depth=1)
        with c.phase("inner"):
            c.charge(work=3, depth=1)
        c.charge(work=2, depth=1)
    assert c.phase_self_totals["outer"] == CostSnapshot(7, 2)
    assert c.phase_self_totals["inner"] == CostSnapshot(3, 1)
    # exclusive rows partition the phased work
    total_self = sum(s.work for s in c.phase_self_totals.values())
    assert total_self == c.work


def test_step_records_keep_phase_context():
    c = CostModel(record_steps=True)
    with c.phase("a"):
        with c.phase("b"):
            c.charge(work=1, depth=1, label="scan")
    c.charge(work=1, depth=1, label="free")
    assert c.steps[0].label == "scan"
    assert c.steps[0].phases == ("a", "b")
    assert c.steps[1].phases == ()


def test_unlabeled_step_records_fall_back_to_innermost_phase():
    c = CostModel(record_steps=True)
    with c.phase("p"):
        c.charge(work=1, depth=1)
    assert c.steps[0].label == "p"


def test_subphase_nests_path_style():
    c = CostModel()
    with c.phase("scale3/phase1/ruling"):
        with c.subphase("bit4"):
            c.charge(work=2, depth=1)
    assert c.phase_totals["scale3/phase1/ruling/bit4"].work == 2
    # a subphase with no enclosing phase is just a phase
    with c.subphase("solo"):
        c.charge(work=1, depth=1)
    assert c.phase_totals["solo"].work == 1


def test_current_phase_path():
    c = CostModel()
    assert c.current_phase_path() == ()
    with c.phase("a"):
        with c.phase("b"):
            assert c.current_phase_path() == ("a", "b")


class _RecordingHook(CostHook):
    def __init__(self):
        self.events = []

    def on_charge(self, work, depth, label):
        self.events.append(("charge", work, depth, label))

    def on_traffic(self, label, calls, elements, reads, writes):
        self.events.append(("traffic", label, calls, elements, reads, writes))

    def on_phase_enter(self, name):
        self.events.append(("enter", name))

    def on_phase_exit(self, name):
        self.events.append(("exit", name))


class _ExplodingHook(CostHook):
    """Fails the test if any callback fires (fast-path guard)."""

    def on_charge(self, work, depth, label):
        raise AssertionError("hook dispatched with no subscription")

    on_traffic = on_phase_enter = on_phase_exit = on_charge


def test_subscribers_receive_all_events_in_order():
    c = CostModel()
    hook = c.subscribe(_RecordingHook())
    with c.phase("p"):
        c.charge(work=4, depth=1, label="scan")
        c.traffic("scan", elements=4, reads=8, writes=4)
    assert hook.events == [
        ("enter", "p"),
        ("charge", 4, 1, "scan"),
        ("traffic", "scan", 1, 4, 8, 4),
        ("exit", "p"),
    ]


def test_phase_exit_notified_on_exception():
    c = CostModel()
    hook = c.subscribe(_RecordingHook())
    with pytest.raises(RuntimeError):
        with c.phase("p"):
            raise RuntimeError("boom")
    assert hook.events == [("enter", "p"), ("exit", "p")]


def test_unsubscribed_hook_never_fires():
    c = CostModel()
    hook = c.subscribe(_ExplodingHook())
    c.unsubscribe(hook)
    c.unsubscribe(hook)  # double-unsubscribe is a no-op
    assert not c.has_subscribers
    with c.phase("p"):
        c.charge(work=1, depth=1)
        c.traffic("x", elements=1)
    # accounting still happened normally
    assert c.work == 1


def test_disabled_path_records_nothing():
    """The zero-overhead contract: no subscribers, no step recording →
    charge/traffic leave no observability residue."""
    c = CostModel()
    c.charge(work=5, depth=1, label="scan")
    c.traffic("scan", elements=5, reads=10, writes=5)
    assert c.steps == []
    assert not c.has_subscribers
    assert c.work == 5 and c.depth == 1
