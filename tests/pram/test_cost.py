"""CostModel: charging, phases, Brent scheduling."""

import pytest

from repro.pram.cost import CostModel, CostSnapshot
from repro.pram.errors import InvalidStepError


def test_charge_accumulates_work_and_depth():
    c = CostModel()
    c.charge(work=10, depth=2)
    c.charge(work=5, depth=1)
    assert c.work == 15
    assert c.depth == 3


def test_zero_depth_charge_allowed():
    c = CostModel()
    c.charge(work=7, depth=0)
    assert c.work == 7
    assert c.depth == 0


def test_negative_charge_rejected():
    c = CostModel()
    with pytest.raises(InvalidStepError):
        c.charge(work=-1)
    with pytest.raises(InvalidStepError):
        c.charge(work=1, depth=-2)


def test_snapshot_delta():
    c = CostModel()
    c.charge(work=4, depth=1)
    a = c.snapshot()
    c.charge(work=6, depth=2)
    delta = c.snapshot() - a
    assert delta == CostSnapshot(work=6, depth=2)


def test_brent_time_bound():
    c = CostModel()
    c.charge(work=1000, depth=10)
    # T_p <= W/p + D
    assert c.time_on(1) == 1010
    assert c.time_on(100) == 20
    assert c.time_on(10**9) == 11  # ceil(1000/1e9)=1


def test_time_on_requires_positive_processors():
    c = CostModel()
    with pytest.raises(InvalidStepError):
        c.time_on(0)


def test_phase_attribution_is_inclusive():
    c = CostModel()
    with c.phase("outer"):
        c.charge(work=5, depth=1)
        with c.phase("inner"):
            c.charge(work=3, depth=1)
    assert c.phase_totals["outer"].work == 8
    assert c.phase_totals["inner"].work == 3
    assert c.phase_totals["outer"].depth == 2


def test_phase_stack_unwinds_on_exception():
    c = CostModel()
    with pytest.raises(RuntimeError):
        with c.phase("p"):
            raise RuntimeError("boom")
    c.charge(work=1)
    # the charge after the exception is not attributed to the dead phase
    assert c.phase_totals.get("p") is None


def test_record_steps():
    c = CostModel(record_steps=True)
    c.charge(work=2, depth=1, label="a")
    c.charge(work=3, depth=1, label="b")
    assert [s.label for s in c.steps] == ["a", "b"]
    assert [s.work for s in c.steps] == [2, 3]


def test_reset_clears_everything():
    c = CostModel(record_steps=True)
    with c.phase("x"):
        c.charge(work=9, depth=3)
    c.reset()
    assert c.work == 0 and c.depth == 0
    assert not c.steps and not c.phase_totals
