"""Unit tests for the CSR frontier gather and the relaxation engine."""

import numpy as np
import pytest

from repro.graphs.generators import erdos_renyi, path_graph
from repro.pram.cost import CostHook, CostModel
from repro.pram.errors import InvalidStepError
from repro.pram.frontier import ENGINES, frontier_relax
from repro.pram.machine import PRAM
from repro.pram.primitives import pgather_csr
from repro.pram.reference import crew_frontier_gather


def test_gather_csr_flattens_frontier_arcs():
    indptr = np.array([0, 2, 2, 5], dtype=np.int64)  # degrees [2, 0, 3]
    slots, arcs = pgather_csr(CostModel(), indptr, np.array([2, 0]))
    assert slots.tolist() == [0, 0, 0, 1, 1]
    assert arcs.tolist() == [2, 3, 4, 0, 1]


def test_gather_csr_duplicate_frontier_entries():
    # the hopset tables gather one vertex once per table entry
    indptr = np.array([0, 2], dtype=np.int64)
    slots, arcs = pgather_csr(CostModel(), indptr, np.array([0, 0]))
    assert slots.tolist() == [0, 0, 1, 1]
    assert arcs.tolist() == [0, 1, 0, 1]


def test_gather_csr_empty_frontier_and_zero_degrees():
    indptr = np.array([0, 2, 2], dtype=np.int64)
    slots, arcs = pgather_csr(CostModel(), indptr, np.zeros(0, dtype=np.int64))
    assert slots.size == 0 and arcs.size == 0
    slots, arcs = pgather_csr(CostModel(), indptr, np.array([1]))
    assert slots.size == 0 and arcs.size == 0


def test_gather_csr_rejects_out_of_range():
    indptr = np.array([0, 2], dtype=np.int64)
    with pytest.raises(InvalidStepError):
        pgather_csr(CostModel(), indptr, np.array([1]))
    with pytest.raises(InvalidStepError):
        pgather_csr(CostModel(), indptr, np.array([-1]))


def test_gather_csr_work_scales_with_frontier_not_graph():
    deg = np.full(100, 4, dtype=np.int64)
    indptr = np.zeros(101, dtype=np.int64)
    np.cumsum(deg, out=indptr[1:])
    cost = CostModel()
    pgather_csr(cost, indptr, np.array([7]))
    assert cost.work == 1 + 4  # |F| + gathered arcs, independent of n=100


def test_gather_csr_matches_literal_reference():
    indptr = np.array([0, 3, 3, 4, 9], dtype=np.int64)
    frontier = np.array([3, 0, 3, 1], dtype=np.int64)
    slots, arcs = pgather_csr(CostModel(), indptr, frontier)
    (lit_slots, lit_arcs), _ = crew_frontier_gather(
        indptr.tolist(), frontier.tolist()
    )
    assert slots.tolist() == lit_slots
    assert arcs.tolist() == lit_arcs


def _init(g, src):
    dist = np.full(g.n, np.inf)
    parent = np.full(g.n, -1, dtype=np.int64)
    dist[src] = 0.0
    parent[src] = src
    return dist, parent


def test_engine_and_threshold_validation():
    g = path_graph(4, weight=1.0)
    pram = PRAM()
    dist, parent = _init(g, 0)
    with pytest.raises(InvalidStepError):
        frontier_relax(pram, g, dist, parent, np.array([0]), 2, engine="bogus")
    with pytest.raises(InvalidStepError):
        frontier_relax(
            pram, g, dist, parent, np.array([0]), 2, engine="auto", threshold_k=0
        )
    assert set(ENGINES) == {"dense", "sparse", "auto"}


def test_idle_rounds_pad_fixed_budgets():
    g = path_graph(4, weight=1.0)
    pram = PRAM()
    dist, parent = _init(g, 0)
    stats = frontier_relax(
        pram, g, dist, parent, np.array([0]), 10, engine="sparse", early_exit=False
    )
    assert stats.rounds == 10
    assert stats.idle_rounds > 0
    assert stats.sparse_rounds + stats.dense_rounds + stats.idle_rounds == 10
    # idle rounds are synchronization-only: depth yes, work no
    assert np.isfinite(dist).all()


class _Capture(CostHook):
    """Collects traffic events (label, elements)."""

    def __init__(self):
        self.traffic = []

    def on_traffic(self, label, calls, elements, reads, writes):
        self.traffic.append((label, elements))


def test_frontier_size_and_mode_switch_events():
    g = erdos_renyi(64, 0.3, seed=44, w_range=(1.0, 4.0))
    pram = PRAM()
    hook = _Capture()
    pram.cost.subscribe(hook)
    dist, parent = _init(g, 0)
    stats = frontier_relax(pram, g, dist, parent, np.array([0]), 63, engine="auto")
    sizes = [e for lbl, e in hook.traffic if lbl == "frontier.size"]
    switches = [e for lbl, e in hook.traffic if lbl == "frontier.switch"]
    assert len(sizes) == stats.sparse_rounds + stats.dense_rounds
    assert len(switches) == stats.mode_switches
    assert stats.sparse_rounds >= 1 and stats.dense_rounds >= 1  # it switched
    assert max(sizes) == stats.peak_frontier
