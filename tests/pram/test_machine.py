"""The PRAM façade: primitive delegation and cost accumulation."""

import numpy as np

from repro.pram.cost import CostModel
from repro.pram.machine import PRAM


def test_machine_owns_a_cost_model_by_default():
    p = PRAM()
    assert isinstance(p.cost, CostModel)
    p.charge(work=3, depth=1)
    assert p.cost.work == 3


def test_machine_accepts_external_cost_model():
    c = CostModel()
    p = PRAM(c)
    p.broadcast(0, 5)
    assert c.work == 5


def test_map_reduce_roundtrip():
    p = PRAM()
    arr = p.broadcast(2.0, 8)
    doubled = p.map(lambda a: a * 2, arr)
    total = p.reduce("sum", doubled)
    assert total == 32.0


def test_select_compact():
    p = PRAM()
    arr = np.arange(6)
    mask = arr % 2 == 0
    assert np.array_equal(p.select(mask), [0, 2, 4])
    assert np.array_equal(p.compact(arr, mask), [0, 2, 4])


def test_prefix_and_sort_delegate():
    p = PRAM()
    assert np.array_equal(p.prefix_sum(np.array([1, 2, 3])), [1, 3, 6])
    assert np.array_equal(p.prefix_max(np.array([1, 3, 2])), [1, 3, 3])
    order = p.sort(np.array([2, 0, 1]))
    assert np.array_equal(order, [1, 2, 0])


def test_scatter_min_delegates():
    p = PRAM()
    t = np.full(2, 9.0)
    p.scatter_min(t, np.array([1]), np.array([4.0]))
    assert t[1] == 4.0


def test_phase_scoping_via_machine():
    p = PRAM()
    with p.phase("build"):
        p.charge(work=10, depth=1)
    assert p.cost.phase_totals["build"].work == 10


def test_snapshot_deltas_track_composed_work():
    p = PRAM()
    a = p.snapshot()
    p.broadcast(0, 10)
    p.reduce("sum", np.ones(10))
    d = p.snapshot() - a
    assert d.work == 20
    assert d.depth >= 2
