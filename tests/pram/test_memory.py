"""CREWMemory: staged writes, conflict detection, round discipline."""

import pytest

from repro.pram.errors import InvalidStepError, WriteConflictError
from repro.pram.memory import CREWMemory


def test_writes_invisible_until_commit():
    m = CREWMemory(4)
    m.write(0, 42)
    assert m.read(0) is None
    m.end_round()
    assert m.read(0) == 42


def test_conflicting_writes_raise():
    m = CREWMemory(4)
    m.write(1, "a")
    with pytest.raises(WriteConflictError) as exc:
        m.write(1, "b")
    assert exc.value.cell == 1


def test_equal_concurrent_writes_allowed_by_default():
    m = CREWMemory(4)
    m.write(2, 7)
    m.write(2, 7)  # COMMON rule: same value OK
    m.end_round()
    assert m.read(2) == 7


def test_strict_mode_rejects_even_equal_writes():
    m = CREWMemory(4, strict=True)
    m.write(2, 7)
    with pytest.raises(WriteConflictError):
        m.write(2, 7)


def test_writes_in_different_rounds_do_not_conflict():
    m = CREWMemory(2)
    m.write(0, 1)
    m.end_round()
    m.write(0, 2)
    m.end_round()
    assert m.read(0) == 2
    assert m.rounds == 2


def test_out_of_range_access():
    m = CREWMemory(3)
    with pytest.raises(InvalidStepError):
        m.read(3)
    with pytest.raises(InvalidStepError):
        m.write(-1, 0)


def test_counters():
    m = CREWMemory(3)
    m.write(0, 1)
    m.end_round()
    m.read(0)
    m.read(1)
    assert m.writes == 1 and m.reads == 2 and m.rounds == 1


def test_snapshot_is_a_copy():
    m = CREWMemory(2)
    m.write(0, 5)
    m.end_round()
    snap = m.snapshot()
    snap[0] = 99
    assert m.read(0) == 5


def test_negative_size_rejected():
    with pytest.raises(InvalidStepError):
        CREWMemory(-1)


def test_parallel_max_reference_program():
    """A textbook CREW max: log n rounds of pairwise compares."""
    vals = [3, 9, 2, 7, 5, 1, 8, 4]
    m = CREWMemory(len(vals))
    for i, v in enumerate(vals):
        m.write(i, v)
    m.end_round()
    stride = 1
    n = len(vals)
    while stride < n:
        for i in range(0, n, 2 * stride):
            if i + stride < n:
                a, b = m.read(i), m.read(i + stride)
                m.write(i, max(a, b))
        m.end_round()
        stride *= 2
    assert m.read(0) == 9
