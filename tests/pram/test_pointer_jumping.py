"""Pointer jumping (Lemma 4.3) and list ranking."""

import numpy as np
import pytest

from repro.pram.cost import CostModel
from repro.pram.errors import InvalidStepError
from repro.pram.pointer_jumping import list_rank, pointer_jump


def test_chain_distances():
    c = CostModel()
    parent = np.array([0, 0, 1, 2, 3])  # a path 0-1-2-3-4
    w = np.array([0.0, 2.0, 3.0, 4.0, 5.0])
    root, dist = pointer_jump(c, parent, w)
    assert np.all(root == 0)
    assert np.allclose(dist, [0, 2, 5, 9, 14])


def test_forest_multiple_roots():
    c = CostModel()
    parent = np.array([0, 0, 2, 2, 3])
    root, dist = pointer_jump(c, parent)
    assert np.array_equal(root, [0, 0, 2, 2, 2])
    assert np.allclose(dist, [0, 1, 0, 1, 2])


def test_default_weights_count_hops():
    c = CostModel()
    parent = np.array([0, 0, 1, 2])
    _, dist = pointer_jump(c, parent)
    assert np.allclose(dist, [0, 1, 2, 3])


def test_star_converges_in_one_round():
    c = CostModel()
    parent = np.zeros(100, dtype=np.int64)
    root, dist = pointer_jump(c, parent)
    assert np.all(root == 0)
    assert dist[0] == 0 and np.all(dist[1:] == 1)


def test_cycle_detected():
    c = CostModel()
    parent = np.array([1, 0])  # 2-cycle, no root
    with pytest.raises(InvalidStepError):
        pointer_jump(c, parent)


def test_out_of_range_parent():
    c = CostModel()
    with pytest.raises(InvalidStepError):
        pointer_jump(c, np.array([5]))


def test_weight_shape_mismatch():
    c = CostModel()
    with pytest.raises(InvalidStepError):
        pointer_jump(c, np.array([0, 0]), np.array([1.0]))


def test_empty_input():
    c = CostModel()
    root, dist = pointer_jump(c, np.zeros(0, dtype=np.int64))
    assert root.size == 0 and dist.size == 0


def test_depth_is_logarithmic():
    c = CostModel()
    n = 1024
    parent = np.concatenate([[0], np.arange(n - 1)])  # long chain
    pointer_jump(c, parent)
    assert c.depth <= 2 * (int(np.ceil(np.log2(n))) + 1)


def test_list_rank():
    c = CostModel()
    nxt = np.array([1, 2, 3, 3])  # list 0→1→2→3, tail 3
    rank = list_rank(c, nxt)
    assert np.array_equal(rank, [3, 2, 1, 0])
