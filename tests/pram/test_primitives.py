"""Vectorized PRAM primitives: results and cost charging."""

import numpy as np
import pytest

from repro.pram.cost import CostModel
from repro.pram.errors import InvalidStepError
from repro.pram import primitives as P


def test_ceil_log2():
    assert P.ceil_log2(0) == 0
    assert P.ceil_log2(1) == 0
    assert P.ceil_log2(2) == 1
    assert P.ceil_log2(3) == 2
    assert P.ceil_log2(1024) == 10
    assert P.ceil_log2(1025) == 11


def test_elementwise_charges_one_round():
    c = CostModel()
    out = P.elementwise(c, np.add, np.arange(5), np.ones(5, dtype=int))
    assert np.array_equal(out, np.arange(1, 6))
    assert c.depth == 1 and c.work == 5


def test_preduce_ops():
    c = CostModel()
    arr = np.array([4.0, -1.0, 7.0])
    assert P.preduce(c, "min", arr) == -1.0
    assert P.preduce(c, "max", arr) == 7.0
    assert P.preduce(c, "sum", arr) == 10.0
    assert bool(P.preduce(c, "or", np.array([False, True])))
    assert not bool(P.preduce(c, "and", np.array([False, True])))


def test_preduce_log_depth():
    c = CostModel()
    P.preduce(c, "sum", np.ones(1024))
    assert c.depth == 11  # ceil(log2 1024) + 1
    assert c.work == 1024


def test_preduce_rejects_bad_op_and_empty():
    c = CostModel()
    with pytest.raises(InvalidStepError):
        P.preduce(c, "median", np.ones(3))
    with pytest.raises(InvalidStepError):
        P.preduce(c, "sum", np.zeros(0))


def test_pbroadcast():
    c = CostModel()
    out = P.pbroadcast(c, 3.5, 4)
    assert np.array_equal(out, np.full(4, 3.5))
    assert c.depth == 1 and c.work == 4


def test_scatter_min_basic():
    c = CostModel()
    t = np.full(4, 10.0)
    P.scatter_min(c, t, np.array([0, 0, 2]), np.array([5.0, 3.0, 7.0]))
    assert np.array_equal(t, [3.0, 10.0, 7.0, 10.0])


def test_scatter_min_shape_mismatch():
    c = CostModel()
    with pytest.raises(InvalidStepError):
        P.scatter_min(c, np.zeros(3), np.array([0]), np.array([1.0, 2.0]))


def test_scatter_min_arg_tracks_winner():
    c = CostModel()
    t = np.full(3, np.inf)
    pay = np.full(3, -1, dtype=np.int64)
    P.scatter_min_arg(
        c, t, pay,
        idx=np.array([0, 0, 1]),
        values=np.array([4.0, 2.0, 9.0]),
        value_payload=np.array([10, 20, 30], dtype=np.int64),
    )
    assert t[0] == 2.0 and pay[0] == 20
    assert t[1] == 9.0 and pay[1] == 30
    assert pay[2] == -1


def test_scatter_min_arg_tie_breaks_to_smaller_payload():
    c = CostModel()
    t = np.full(1, np.inf)
    pay = np.full(1, -1, dtype=np.int64)
    P.scatter_min_arg(
        c, t, pay,
        idx=np.array([0, 0]),
        values=np.array([5.0, 5.0]),
        value_payload=np.array([9, 3], dtype=np.int64),
    )
    assert pay[0] == 3


def test_scatter_min_arg_no_update_on_equal():
    """An update equal to the current value must not steal the payload."""
    c = CostModel()
    t = np.array([5.0])
    pay = np.array([1], dtype=np.int64)
    P.scatter_min_arg(c, t, pay, np.array([0]), np.array([5.0]), np.array([2], dtype=np.int64))
    assert pay[0] == 1


def test_pselect_and_pcompact():
    c = CostModel()
    mask = np.array([True, False, True, True])
    assert np.array_equal(P.pselect(c, mask), [0, 2, 3])
    arr = np.array([10, 20, 30, 40])
    assert np.array_equal(P.pcompact(c, arr, mask), [10, 30, 40])


def test_pcompact_length_mismatch():
    c = CostModel()
    with pytest.raises(InvalidStepError):
        P.pcompact(c, np.arange(3), np.array([True, False]))
