"""Vectorized PRAM primitives: results and cost charging."""

import numpy as np
import pytest

from repro.pram.cost import CostModel
from repro.pram.errors import InvalidStepError
from repro.pram import primitives as P


def test_ceil_log2():
    assert P.ceil_log2(0) == 0
    assert P.ceil_log2(1) == 0
    assert P.ceil_log2(2) == 1
    assert P.ceil_log2(3) == 2
    assert P.ceil_log2(1024) == 10
    assert P.ceil_log2(1025) == 11


def test_elementwise_charges_one_round():
    c = CostModel()
    out = P.elementwise(c, np.add, np.arange(5), np.ones(5, dtype=int))
    assert np.array_equal(out, np.arange(1, 6))
    assert c.depth == 1 and c.work == 5


def test_preduce_ops():
    c = CostModel()
    arr = np.array([4.0, -1.0, 7.0])
    assert P.preduce(c, "min", arr) == -1.0
    assert P.preduce(c, "max", arr) == 7.0
    assert P.preduce(c, "sum", arr) == 10.0
    assert bool(P.preduce(c, "or", np.array([False, True])))
    assert not bool(P.preduce(c, "and", np.array([False, True])))


def test_preduce_log_depth():
    c = CostModel()
    P.preduce(c, "sum", np.ones(1024))
    assert c.depth == 11  # ceil(log2 1024) + 1
    assert c.work == 1024


def test_preduce_rejects_bad_op_and_empty():
    c = CostModel()
    with pytest.raises(InvalidStepError):
        P.preduce(c, "median", np.ones(3))
    with pytest.raises(InvalidStepError):
        P.preduce(c, "sum", np.zeros(0))


def test_pbroadcast():
    c = CostModel()
    out = P.pbroadcast(c, 3.5, 4)
    assert np.array_equal(out, np.full(4, 3.5))
    assert c.depth == 1 and c.work == 4


def test_scatter_min_basic():
    c = CostModel()
    t = np.full(4, 10.0)
    P.scatter_min(c, t, np.array([0, 0, 2]), np.array([5.0, 3.0, 7.0]))
    assert np.array_equal(t, [3.0, 10.0, 7.0, 10.0])


def test_scatter_min_shape_mismatch():
    c = CostModel()
    with pytest.raises(InvalidStepError):
        P.scatter_min(c, np.zeros(3), np.array([0]), np.array([1.0, 2.0]))


def test_scatter_min_arg_tracks_winner():
    c = CostModel()
    t = np.full(3, np.inf)
    pay = np.full(3, -1, dtype=np.int64)
    P.scatter_min_arg(
        c, t, pay,
        idx=np.array([0, 0, 1]),
        values=np.array([4.0, 2.0, 9.0]),
        value_payload=np.array([10, 20, 30], dtype=np.int64),
    )
    assert t[0] == 2.0 and pay[0] == 20
    assert t[1] == 9.0 and pay[1] == 30
    assert pay[2] == -1


def test_scatter_min_arg_tie_breaks_to_smaller_payload():
    c = CostModel()
    t = np.full(1, np.inf)
    pay = np.full(1, -1, dtype=np.int64)
    P.scatter_min_arg(
        c, t, pay,
        idx=np.array([0, 0]),
        values=np.array([5.0, 5.0]),
        value_payload=np.array([9, 3], dtype=np.int64),
    )
    assert pay[0] == 3


def test_scatter_min_arg_no_update_on_equal():
    """An update equal to the current value must not steal the payload."""
    c = CostModel()
    t = np.array([5.0])
    pay = np.array([1], dtype=np.int64)
    P.scatter_min_arg(c, t, pay, np.array([0]), np.array([5.0]), np.array([2], dtype=np.int64))
    assert pay[0] == 1


def test_pselect_and_pcompact():
    c = CostModel()
    mask = np.array([True, False, True, True])
    assert np.array_equal(P.pselect(c, mask), [0, 2, 3])
    arr = np.array([10, 20, 30, 40])
    assert np.array_equal(P.pcompact(c, arr, mask), [10, 30, 40])


def test_pcompact_length_mismatch():
    c = CostModel()
    with pytest.raises(InvalidStepError):
        P.pcompact(c, np.arange(3), np.array([True, False]))


# -- fused relaxation kernels -------------------------------------------------


def _random_relax_case(seed, n=16, m=48):
    rng = np.random.default_rng(seed)
    dist = np.where(
        rng.random(n) < 0.3, np.inf, rng.integers(0, 20, size=n).astype(np.float64)
    )
    parent = np.where(np.isfinite(dist), rng.integers(0, n, size=n), -1).astype(np.int64)
    tails = rng.integers(0, n, size=m).astype(np.int64)
    heads = rng.integers(0, n, size=m).astype(np.int64)
    weights = rng.integers(1, 9, size=m).astype(np.float64)
    return dist, parent, tails, heads, weights


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
@pytest.mark.parametrize("use_plan", [False, True])
def test_prelax_arcs_matches_unfused_sequence(seed, use_plan):
    from repro.pram.workspace import Workspace

    dist, parent, tails, heads, weights = _random_relax_case(seed)
    plan = P.build_relax_plan(tails, heads, weights, n_cells=dist.size) if use_plan else None

    fd, fp = dist.copy(), parent.copy()
    cf = CostModel(record_steps=True)
    frontier = P.prelax_arcs(
        cf, fd, fp, tails, heads, weights,
        plan=plan, workspace=Workspace(poison=True), changed="frontier",
        label="relax", changed_label="converged", frontier_label="frontier",
    )

    ud, up = dist.copy(), parent.copy()
    cu = CostModel(record_steps=True)
    prev = ud.copy()
    cand = ud[tails] + weights
    P.scatter_min_arg(cu, ud, up, heads, cand, tails, label="relax")
    ch = P.elementwise(cu, np.not_equal, prev, ud, label="converged")
    uf = P.pselect(cu, ch, label="frontier")

    assert np.array_equal(fd, ud)
    assert np.array_equal(fp, up)
    assert np.array_equal(frontier, uf)
    # charged identically: same step stream (work, depth, label)
    assert [(s.work, s.depth, s.label) for s in cf.steps] == [
        (s.work, s.depth, s.label) for s in cu.steps
    ]
    assert (cf.work, cf.depth) == (cu.work, cu.depth)


def test_prelax_arcs_changed_any_matches_unfused():
    dist, parent, tails, heads, weights = _random_relax_case(7)
    fd, fp = dist.copy(), parent.copy()
    cf = CostModel()
    out = P.prelax_arcs(cf, fd, fp, tails, heads, weights, changed="any")
    ud, up = dist.copy(), parent.copy()
    cu = CostModel()
    prev = ud.copy()
    cand = ud[tails] + weights
    P.scatter_min_arg(cu, ud, up, heads, cand, tails, label="relax")
    ch = P.elementwise(cu, np.not_equal, prev, ud, label="converged")
    any_changed = bool(P.preduce(cu, "or", ch, label="converged"))
    assert out == any_changed
    assert np.array_equal(fd, ud) and np.array_equal(fp, up)
    assert (cf.work, cf.depth) == (cu.work, cu.depth)


def test_prelax_arcs_changed_skip_charges_relax_only():
    dist, parent, tails, heads, weights = _random_relax_case(9)
    cf = CostModel(record_steps=True)
    out = P.prelax_arcs(cf, dist, parent, tails, heads, weights, changed="skip")
    assert {s.label for s in cf.steps} == {"relax"}
    assert out.dtype == np.int64  # the improved cells, sorted


def test_prelax_arcs_empty_arcs():
    dist = np.array([0.0, np.inf])
    parent = np.array([0, -1], dtype=np.int64)
    c = CostModel()
    out = P.prelax_arcs(
        c, dist, parent,
        np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64), np.zeros(0),
        changed="frontier",
    )
    assert out.size == 0
    assert c.depth >= 1  # the synchronization round is still charged


def test_prelax_arcs_tie_breaks_to_smaller_tail():
    # two arcs offer the same improving value to cell 2: tail 1 must win
    dist = np.array([0.0, 0.0, 10.0])
    parent = np.array([0, 1, -1], dtype=np.int64)
    tails = np.array([1, 0], dtype=np.int64)
    heads = np.array([2, 2], dtype=np.int64)
    weights = np.array([4.0, 4.0])
    c = CostModel()
    P.prelax_arcs(c, dist, parent, tails, heads, weights, changed="skip")
    assert dist[2] == 4.0 and parent[2] == 0


def test_prelax_arcs_rejects_bad_changed_mode():
    dist, parent, tails, heads, weights = _random_relax_case(5)
    with pytest.raises(InvalidStepError):
        P.prelax_arcs(CostModel(), dist, parent, tails, heads, weights, changed="bogus")


def test_pgather_add_matches_gather_plus_add():
    rng = np.random.default_rng(11)
    n = 8
    deg = rng.integers(0, 4, size=n).astype(np.int64)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(deg, out=indptr[1:])
    m = int(indptr[-1])
    indices = rng.integers(0, n, size=m).astype(np.int64)
    weights = rng.integers(1, 6, size=m).astype(np.float64)
    frontier = rng.integers(0, n, size=5).astype(np.int64)
    base = rng.integers(0, 9, size=frontier.size).astype(np.float64)

    cf = CostModel(record_steps=True)
    slots_f, heads_f, cand_f = P.pgather_add(
        cf, indptr, indices, weights, frontier, base
    )

    cu = CostModel(record_steps=True)
    slots_u, arcs_u = P.pgather_csr(cu, indptr, frontier, label="gather_csr")
    cand_u = base[slots_u] + weights[arcs_u]
    cu.charge(work=int(arcs_u.size), depth=1, label="relax")

    assert np.array_equal(slots_f, slots_u)
    assert np.array_equal(heads_f, indices[arcs_u])
    assert np.array_equal(cand_f, cand_u)
    assert [(s.work, s.depth, s.label) for s in cf.steps] == [
        (s.work, s.depth, s.label) for s in cu.steps
    ]


def test_pgather_add_empty_frontier_matches_gather_csr_charge():
    indptr = np.array([0, 2, 3], dtype=np.int64)
    cf = CostModel(record_steps=True)
    slots, heads, cand = P.pgather_add(
        cf, indptr, np.array([1, 0, 1], dtype=np.int64), np.ones(3),
        np.zeros(0, dtype=np.int64), np.zeros(0),
    )
    assert slots.size == 0 and heads.size == 0 and cand.size == 0
    cu = CostModel(record_steps=True)
    P.pgather_csr(cu, indptr, np.zeros(0, dtype=np.int64), label="gather_csr")
    assert [(s.work, s.depth, s.label) for s in cf.steps] == [
        (s.work, s.depth, s.label) for s in cu.steps
    ]
