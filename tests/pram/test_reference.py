"""Literal CREW programs agree with the vectorized, cost-charged versions."""

import numpy as np

from repro.graphs.distances import hop_limited_distances
from repro.graphs.generators import erdos_renyi, path_graph
from repro.pram.cost import CostModel
from repro.pram.pointer_jumping import pointer_jump
from repro.pram.reference import crew_bellman_ford, crew_pointer_jump, crew_prefix_sum
from repro.pram.machine import PRAM
from repro.sssp.bellman_ford import bellman_ford


def test_crew_prefix_sum_matches_numpy():
    vals = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0]
    out, rounds = crew_prefix_sum(vals)
    assert np.allclose(out, np.cumsum(vals))
    assert rounds <= int(np.ceil(np.log2(len(vals)))) + 2


def test_crew_prefix_sum_singleton():
    out, _ = crew_prefix_sum([7.0])
    assert out == [7.0]


def test_crew_pointer_jump_matches_vectorized():
    parent = [0, 0, 1, 2, 2, 4]
    weight = [0.0, 1.5, 2.0, 0.5, 3.0, 1.0]
    roots, dists, rounds = crew_pointer_jump(parent, weight)
    v_roots, v_dists = pointer_jump(CostModel(), np.array(parent), np.array(weight))
    assert roots == v_roots.tolist()
    assert np.allclose(dists, v_dists)
    # two memory rounds per doubling step
    assert rounds <= 2 * (int(np.ceil(np.log2(6))) + 1) + 1


def test_crew_bellman_ford_matches_vectorized():
    g = erdos_renyi(15, 0.25, seed=77, w_range=(1.0, 3.0))
    for h in (1, 3, 14):
        ref, _ = crew_bellman_ford(g, 0, h)
        assert np.allclose(ref, hop_limited_distances(g, 0, h))


def test_crew_bellman_ford_agrees_with_pram_machine():
    g = path_graph(10, w_range=(1.0, 2.0), seed=78)
    ref, _ = crew_bellman_ford(g, 0, 9)
    mach = bellman_ford(PRAM(), g, 0, 9)
    assert np.allclose(ref, mach.dist)


def test_crew_bellman_ford_round_discipline_early_exit():
    g = path_graph(5, weight=1.0)
    _, rounds = crew_bellman_ford(g, 0, 100)
    assert rounds <= 7  # 4 productive + fixpoint + init


# -- literal versions of the remaining core primitives (conformance PR) ------


def test_crew_map_and_broadcast():
    from repro.pram.reference import crew_broadcast, crew_map

    out, rounds = crew_map([1.0, 2.0, 3.0], lambda x: x * x)
    assert out == [1.0, 4.0, 9.0] and rounds == 2
    out, rounds = crew_broadcast(7.5, 4)
    assert out == [7.5] * 4 and rounds == 2


def test_crew_reduce_ops():
    from repro.pram.reference import crew_reduce

    vals = [3.0, 1.0, 4.0, 1.0, 5.0]
    assert crew_reduce("min", vals)[0] == 1.0
    assert crew_reduce("max", vals)[0] == 5.0
    assert crew_reduce("sum", vals)[0] == 14.0
    assert crew_reduce("or", [0, 0, 2])[0] is True
    assert crew_reduce("and", [1, 0, 2])[0] is False
    _, rounds = crew_reduce("sum", vals)
    assert rounds <= int(np.ceil(np.log2(5))) + 1


def test_crew_scatter_min_collisions_resolve_to_minimum():
    from repro.pram.reference import crew_scatter_min

    out, _ = crew_scatter_min(
        [10.0, 10.0, 10.0], [0, 0, 2, 0, 2], [5.0, 3.0, 7.0, 4.0, 12.0]
    )
    assert out == [3.0, 10.0, 7.0]


def test_crew_scatter_min_arg_lowest_payload_wins_ties():
    from repro.pram.primitives import scatter_min_arg
    from repro.pram.reference import crew_scatter_min_arg

    idx = [1, 1, 1]
    vals = [2.0, 2.0, 2.0]
    pays = [7, 4, 9]
    t, p, _ = crew_scatter_min_arg([9.0, 9.0], [-1, -1], idx, vals, pays)
    assert t == [9.0, 2.0] and p == [-1, 4]
    vt, vp = scatter_min_arg(
        CostModel(), np.array([9.0, 9.0]), np.array([-1, -1]),
        np.array(idx), np.array(vals), np.array(pays),
    )
    assert vt.tolist() == t and vp.tolist() == p


def test_crew_scatter_min_arg_keeps_incumbent_on_equal_value():
    from repro.pram.reference import crew_scatter_min_arg

    # an update equal to the current cell value must NOT steal the payload
    t, p, _ = crew_scatter_min_arg([2.0], [5], [0], [2.0], [1])
    assert t == [2.0] and p == [5]


def test_crew_select_and_compact():
    from repro.pram.reference import crew_compact, crew_select

    sel, _ = crew_select([True, False, True, True, False])
    assert sel == [0, 2, 3]
    comp, _ = crew_compact([9.0, 8.0, 7.0, 6.0], [False, True, False, True])
    assert comp == [8.0, 6.0]
    assert crew_select([])[0] == []


def test_crew_prefix_variants():
    from repro.pram.reference import crew_prefix_max, crew_prefix_sum

    excl, _ = crew_prefix_sum([2.0, 3.0, 4.0], inclusive=False)
    assert excl == [0.0, 2.0, 5.0]
    pmax, _ = crew_prefix_max([1.0, 5.0, 2.0, 7.0])
    assert pmax == [1.0, 5.0, 5.0, 7.0]


def test_crew_segmented_sum_matches_loop():
    from repro.pram.reference import crew_segmented_sum

    out, _ = crew_segmented_sum([1.0, 2.0, 3.0, 4.0], [0, 2, 0, 2], 3)
    assert out == [4.0, 0.0, 6.0]


def test_crew_sort_is_stable_argsort():
    from repro.pram.reference import crew_lexsort, crew_sort

    keys = [3.0, 1.0, 3.0, 1.0]
    order, rounds = crew_sort(keys)
    assert order == np.argsort(keys, kind="stable").tolist()
    assert rounds <= len(keys) + 1  # odd-even transposition network
    a, b = [1, 0, 1, 0], [2, 2, 1, 1]
    assert crew_lexsort((a, b))[0] == np.lexsort((a, b)).tolist()


def test_crew_list_rank_path():
    from repro.pram.reference import crew_list_rank

    nxt = [0, 0, 1, 2]  # chain 3 -> 2 -> 1 -> 0
    ranks, _ = crew_list_rank(nxt)
    assert ranks == [0, 1, 2, 3]


def test_crew_sssp_is_exact(small_er):
    from repro.graphs.distances import hop_limited_distances
    from repro.pram.reference import crew_sssp

    dist, _ = crew_sssp(small_er, 0)
    exact = hop_limited_distances(small_er, 0, small_er.n - 1)
    assert np.array_equal(np.asarray(dist), exact)
