"""Literal CREW programs agree with the vectorized, cost-charged versions."""

import numpy as np

from repro.graphs.distances import hop_limited_distances
from repro.graphs.generators import erdos_renyi, path_graph
from repro.pram.cost import CostModel
from repro.pram.pointer_jumping import pointer_jump
from repro.pram.reference import crew_bellman_ford, crew_pointer_jump, crew_prefix_sum
from repro.pram.machine import PRAM
from repro.sssp.bellman_ford import bellman_ford


def test_crew_prefix_sum_matches_numpy():
    vals = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0]
    out, rounds = crew_prefix_sum(vals)
    assert np.allclose(out, np.cumsum(vals))
    assert rounds <= int(np.ceil(np.log2(len(vals)))) + 2


def test_crew_prefix_sum_singleton():
    out, _ = crew_prefix_sum([7.0])
    assert out == [7.0]


def test_crew_pointer_jump_matches_vectorized():
    parent = [0, 0, 1, 2, 2, 4]
    weight = [0.0, 1.5, 2.0, 0.5, 3.0, 1.0]
    roots, dists, rounds = crew_pointer_jump(parent, weight)
    v_roots, v_dists = pointer_jump(CostModel(), np.array(parent), np.array(weight))
    assert roots == v_roots.tolist()
    assert np.allclose(dists, v_dists)
    # two memory rounds per doubling step
    assert rounds <= 2 * (int(np.ceil(np.log2(6))) + 1) + 1


def test_crew_bellman_ford_matches_vectorized():
    g = erdos_renyi(15, 0.25, seed=77, w_range=(1.0, 3.0))
    for h in (1, 3, 14):
        ref, _ = crew_bellman_ford(g, 0, h)
        assert np.allclose(ref, hop_limited_distances(g, 0, h))


def test_crew_bellman_ford_agrees_with_pram_machine():
    g = path_graph(10, w_range=(1.0, 2.0), seed=78)
    ref, _ = crew_bellman_ford(g, 0, 9)
    mach = bellman_ford(PRAM(), g, 0, 9)
    assert np.allclose(ref, mach.dist)


def test_crew_bellman_ford_round_discipline_early_exit():
    g = path_graph(5, weight=1.0)
    _, rounds = crew_bellman_ford(g, 0, 100)
    assert rounds <= 7  # 4 productive + fixpoint + init
