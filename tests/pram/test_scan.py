"""Prefix sums and segmented scans."""

import numpy as np
import pytest

from repro.pram.cost import CostModel
from repro.pram.errors import InvalidStepError
from repro.pram.scan import prefix_max, prefix_sum, segment_offsets, segmented_sum


def test_inclusive_scan_matches_cumsum():
    c = CostModel()
    arr = np.array([3, 1, 4, 1, 5])
    assert np.array_equal(prefix_sum(c, arr), np.cumsum(arr))


def test_exclusive_scan():
    c = CostModel()
    arr = np.array([3, 1, 4])
    assert np.array_equal(prefix_sum(c, arr, inclusive=False), [0, 3, 4])


def test_exclusive_scan_singleton_and_empty():
    c = CostModel()
    assert np.array_equal(prefix_sum(c, np.array([7]), inclusive=False), [0])
    assert prefix_sum(c, np.zeros(0, dtype=int), inclusive=False).size == 0


def test_scan_depth_is_logarithmic():
    c = CostModel()
    prefix_sum(c, np.ones(1024, dtype=int))
    assert c.depth == 21  # 2*log2(1024) + 1
    assert c.work == 2048


def test_prefix_max():
    c = CostModel()
    arr = np.array([2, 9, 1, 9, 3])
    assert np.array_equal(prefix_max(c, arr), [2, 9, 9, 9, 9])


def test_segment_offsets():
    c = CostModel()
    ids = np.array([0, 0, 2, 2, 2, 5])
    uniq, counts = segment_offsets(c, ids)
    assert np.array_equal(uniq, [0, 2, 5])
    assert np.array_equal(counts, [2, 3, 1])


def test_segment_offsets_requires_sorted():
    c = CostModel()
    with pytest.raises(InvalidStepError):
        segment_offsets(c, np.array([1, 0]))


def test_segmented_sum_noncontiguous():
    c = CostModel()
    vals = np.array([1.0, 2.0, 3.0, 4.0])
    segs = np.array([1, 0, 1, 0])
    out = segmented_sum(c, vals, segs, num_segments=3)
    assert np.array_equal(out, [6.0, 4.0, 0.0])


def test_segmented_sum_shape_check():
    c = CostModel()
    with pytest.raises(InvalidStepError):
        segmented_sum(c, np.ones(2), np.zeros(3, dtype=int), 1)
