"""Per-step Brent scheduling."""

import pytest

from repro.pram.cost import CostModel
from repro.pram.errors import InvalidStepError
from repro.pram.schedule import makespan, speedup_curve


def model(steps):
    c = CostModel(record_steps=True)
    for w, d in steps:
        c.charge(work=w, depth=d)
    return c


def test_single_processor_is_work_dominated():
    c = model([(100, 2), (50, 1)])
    # step 1: 2 + ceil(100/1) − 1 = 101 ; step 2: 1 + 49 = 50
    assert makespan(c, 1) == 151


def test_infinite_processors_hit_critical_path():
    c = model([(100, 2), (50, 1)])
    assert makespan(c, 10**9) == 3  # just the depths


def test_monotone_in_processors():
    c = model([(64, 1), (128, 3), (1000, 2)])
    times = [makespan(c, p) for p in (1, 2, 4, 8, 1024)]
    assert times == sorted(times, reverse=True)


def test_never_below_total_depth():
    c = model([(7, 2), (0, 5)])
    assert makespan(c, 10**9) >= 7


def test_zero_work_steps_cost_their_depth():
    c = model([(0, 4)])
    assert makespan(c, 1) == 4
    assert makespan(c, 100) == 4


def test_speedup_curve_properties():
    c = model([(1000, 1)] * 10)
    pts = speedup_curve(c, [1, 2, 10, 100])
    assert pts[0].speedup == 1.0 and pts[0].efficiency == 1.0
    assert all(a.speedup <= b.processors for a, b in zip(pts, pts))  # speedup ≤ p
    assert pts[1].speedup > 1.5  # near-linear regime at low p
    assert pts[-1].efficiency <= pts[0].efficiency


def test_requires_recorded_steps():
    c = CostModel()  # record_steps=False
    c.charge(work=5, depth=1)
    with pytest.raises(InvalidStepError):
        makespan(c, 2)


def test_requires_positive_processors():
    c = model([(5, 1)])
    with pytest.raises(InvalidStepError):
        makespan(c, 0)


def test_tighter_than_aggregate_brent():
    """Per-step scheduling is never more optimistic than aggregate Brent."""
    c = model([(10, 1), (1000, 1), (10, 1)])
    for p in (1, 3, 17):
        assert makespan(c, p) >= c.time_on(p) - len(c.steps)


def test_real_build_speedup_saturates():
    from repro.graphs.generators import erdos_renyi
    from repro.hopsets.multi_scale import build_hopset
    from repro.hopsets.params import HopsetParams
    from repro.pram.machine import PRAM

    pram = PRAM(CostModel(record_steps=True))
    g = erdos_renyi(32, 0.15, seed=1001)
    build_hopset(g, HopsetParams(beta=6), pram)
    pts = speedup_curve(pram.cost, [1, 16, 256, 10**8])
    assert pts[1].speedup > 2  # parallelism is real
    assert pts[-1].time >= pram.cost.depth  # critical path is the floor
