"""Parallel sort cost charging and correctness."""

import numpy as np
import pytest

from repro.pram.cost import CostModel
from repro.pram.errors import InvalidStepError
from repro.pram.sort import parallel_lexsort, parallel_sort


def test_sort_permutation_correct():
    c = CostModel()
    keys = np.array([3, 1, 2])
    order = parallel_sort(c, keys)
    assert np.array_equal(keys[order], [1, 2, 3])


def test_sort_is_stable():
    c = CostModel()
    keys = np.array([1, 0, 1, 0])
    order = parallel_sort(c, keys)
    # the two zeros keep their original relative order, ditto the ones
    assert np.array_equal(order, [1, 3, 0, 2])


def test_aks_cost_rates():
    c = CostModel()
    parallel_sort(c, np.arange(256))
    assert c.depth == 9       # log2(256) + 1
    assert c.work == 256 * 8  # n log n


def test_bitonic_cost_rates():
    c = CostModel()
    parallel_sort(c, np.arange(256), network="bitonic")
    assert c.depth == 65      # log^2 + 1
    assert c.work == 256 * 64


def test_unknown_network_rejected():
    c = CostModel()
    with pytest.raises(InvalidStepError):
        parallel_sort(c, np.arange(4), network="quantum")


def test_lexsort_matches_numpy():
    c = CostModel()
    a = np.array([1, 1, 0, 0])
    b = np.array([9, 3, 5, 1])
    order = parallel_lexsort(c, (b, a))
    assert np.array_equal(order, np.lexsort((b, a)))


def test_lexsort_validation():
    c = CostModel()
    with pytest.raises(InvalidStepError):
        parallel_lexsort(c, ())
    with pytest.raises(InvalidStepError):
        parallel_lexsort(c, (np.arange(2), np.arange(3)))
