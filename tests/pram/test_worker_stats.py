"""Cross-process worker telemetry of the sharded backend.

Pins the tentpole contracts of docs/observability.md ("cross-process
telemetry"): per-worker stats rows merge into the registry with a sane
wall-split, per-worker wall never exceeds the backend's round wall, the
Chrome exporter gains one lane per worker next to the parent lane,
fallbacks carry a structured reason label, and — the backend contract —
outputs and charged costs are bit-identical with worker stats enabled,
disabled, or with no hooks attached at all.
"""

import os
import signal

import numpy as np

from repro.graphs.generators import erdos_renyi
from repro.obs.export import backend_health_report, to_chrome_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import SpanTracer
from repro.pram.backends import SerialBackend, ShardedBackend
from repro.pram.backends.sharded import worker_stats_enabled
from repro.pram.machine import PRAM
from repro.sssp.bellman_ford import bellman_ford


def _graph():
    return erdos_renyi(120, 0.08, seed=11)


def _instrumented_run(be):
    """One Bellman–Ford run under tracer+registry; returns all the pieces."""
    g = _graph()
    pram = PRAM(backend=be)
    tracer = SpanTracer.attach(pram.cost)
    registry = MetricsRegistry.attach(pram.cost)
    res = bellman_ford(pram, g, 0, g.n - 1)
    tracer.finish()
    registry.detach(pram.cost)
    return res, pram.cost.snapshot(), tracer, registry


def _counter(registry, name):
    c = registry.counters.get(name)
    return c.value if c is not None else 0


def test_worker_stats_env_toggle(monkeypatch):
    monkeypatch.delenv("REPRO_WORKER_STATS", raising=False)
    assert worker_stats_enabled()
    for off in ("0", "false", "OFF", "no"):
        monkeypatch.setenv("REPRO_WORKER_STATS", off)
        assert not worker_stats_enabled()
    monkeypatch.setenv("REPRO_WORKER_STATS", "1")
    assert worker_stats_enabled()


def test_worker_metrics_merge_with_sane_wall_split():
    be = ShardedBackend(workers=2, min_arcs=1)
    try:
        _, _, _, registry = _instrumented_run(be)
        assert be.sharded_rounds > 0 and not be.failed
        rounds = _counter(registry, "primitive.backend.round.calls")
        round_wall = _counter(registry, "primitive.backend.round_wall_ns.elements")
        assert rounds == be.sharded_rounds and round_wall > 0
        for w in range(2):
            prefix = f"primitive.backend.worker.{w}"
            wall = _counter(registry, f"{prefix}.wall_ns.elements")
            split = sum(
                _counter(registry, f"{prefix}.{part}.elements")
                for part in ("gather_ns", "segmin_ns", "serialize_ns")
            )
            assert wall > 0, f"worker {w} reported no wall"
            assert split <= wall, "split parts exceed the worker's total"
            assert _counter(registry, f"{prefix}.arcs.elements") > 0
        # derived health figures all present and plausible
        assert _counter(registry, "primitive.backend.combine_depth.elements") >= 1
        imb = _counter(registry, "primitive.backend.imbalance_milli.elements")
        calls = _counter(registry, "primitive.backend.imbalance_milli.calls")
        assert imb >= 1000 * calls  # max/mean >= 1 by construction
        assert _counter(registry, "primitive.backend.ipc_ns.elements") >= 0
    finally:
        be.close()


def test_per_round_worker_wall_bounded_by_round_wall():
    be = ShardedBackend(workers=2, min_arcs=1)
    try:
        _instrumented_run(be)
        assert be.round_log, "no rounds logged"
        for entry in be.round_log:
            assert entry["wall_ns"] > 0
            workers = {w["worker"] for w in entry["workers"]}
            assert workers == {0, 1}
            for w in entry["workers"]:
                assert 0 < w["wall_ns"] <= entry["wall_ns"]
                parts = w["gather_ns"] + w["segmin_ns"] + w["serialize_ns"]
                assert parts <= w["wall_ns"]
    finally:
        be.close()


def test_chrome_trace_gains_one_lane_per_worker():
    be = ShardedBackend(workers=2, min_arcs=1)
    try:
        _, _, tracer, registry = _instrumented_run(be)
        doc = to_chrome_trace(tracer, metrics=registry, worker_rounds=be.round_log)
        events = doc["traceEvents"]
        names = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert names == {"parent", "worker 0", "worker 1"}
        lane_tids = {
            e["tid"] for e in events if e["ph"] == "X" and e.get("pid") == 0
        }
        assert {1, 2} <= lane_tids  # one wall-clock lane per worker
        for e in events:
            if e["ph"] == "X" and e.get("tid", 0) >= 1 and e.get("pid") == 0:
                assert e["ts"] >= 0 and e["dur"] > 0
                assert e["args"]["arcs"] > 0
    finally:
        be.close()


def test_outputs_and_costs_identical_stats_on_off(monkeypatch):
    g = _graph()
    runs = {}
    for mode in ("1", "0"):
        monkeypatch.setenv("REPRO_WORKER_STATS", mode)
        be = ShardedBackend(workers=2, min_arcs=1)
        try:
            pram = PRAM(backend=be)
            res = bellman_ford(pram, g, 0, g.n - 1)
            assert be.sharded_rounds > 0
            runs[mode] = (res, pram.cost.snapshot())
        finally:
            be.close()
    serial = bellman_ford(PRAM(backend=SerialBackend()), g, 0, g.n - 1)
    (on, on_cost), (off, off_cost) = runs["1"], runs["0"]
    assert np.array_equal(on.dist, off.dist)
    assert np.array_equal(on.parent, off.parent)
    assert np.array_equal(serial.dist, on.dist)
    assert np.array_equal(serial.parent, on.parent)
    assert (on_cost.work, on_cost.depth) == (off_cost.work, off_cost.depth)


def test_no_hooks_means_no_merge_but_round_log_still_fills():
    """Without subscribers the merge is skipped; plain runs stay lean."""
    be = ShardedBackend(workers=2, min_arcs=1)
    try:
        g = _graph()
        bellman_ford(PRAM(backend=be), g, 0, g.n - 1)
        assert be.sharded_rounds > 0
        assert be.round_log == []  # merge (and its logging) is hook-gated
    finally:
        be.close()


def test_fallback_reason_label_after_worker_death():
    g = _graph()
    be = ShardedBackend(workers=2, min_arcs=1, round_timeout=10.0)
    try:
        pram = PRAM(backend=be)
        registry = MetricsRegistry.attach(pram.cost)
        bellman_ford(pram, g, 0, 2, early_exit=False)  # spin up the pool
        victim = be._procs[0]
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=10.0)
        res = bellman_ford(pram, g, 0, g.n - 1)
        registry.detach(pram.cost)
        assert be.failed and be.failure_kind == "worker-death"
        assert _counter(registry, "primitive.backend.fallback.elements") == 1
        assert (
            _counter(registry, "primitive.backend.fallback.worker-death.elements")
            == 1
        )
        assert (
            _counter(registry, "primitive.backend.serial_round.fallback.elements")
            > 0
        )
        report = backend_health_report(registry)
        assert "fallback (worker-death)" in report
        serial = bellman_ford(PRAM(backend=SerialBackend()), g, 0, g.n - 1)
        assert np.array_equal(serial.dist, res.dist)
    finally:
        be.close()


def test_serial_round_reason_min_arcs():
    be = ShardedBackend(workers=2, min_arcs=10**9)
    try:
        _, _, _, registry = _instrumented_run(be)
        assert be.sharded_rounds == 0
        assert (
            _counter(registry, "primitive.backend.serial_round.min-arcs.elements")
            == be.serial_rounds
        )
        report = backend_health_report(registry)
        assert "serial rounds (min-arcs)" in report
    finally:
        be.close()


def test_health_report_empty_without_backend_traffic():
    registry = MetricsRegistry()
    assert backend_health_report(registry) == ""
    g = _graph()
    pram = PRAM(backend=SerialBackend())
    reg = MetricsRegistry.attach(pram.cost)
    bellman_ford(pram, g, 0, g.n - 1)
    reg.detach(pram.cost)
    assert backend_health_report(reg) == ""
