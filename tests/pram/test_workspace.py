"""Workspace buffer pool: reuse, growth, poisoning, plan cache, env toggles."""

import numpy as np
import pytest

from repro.graphs.generators import path_graph
from repro.pram.workspace import INT_POISON, Workspace, fused_default, poison_default


def test_take_reuses_the_same_buffer():
    ws = Workspace(poison=False)
    a = ws.take("x", 10, np.float64)
    a.fill(7.0)
    b = ws.take("x", 10, np.float64)
    assert np.shares_memory(a, b)


def test_take_grows_geometrically_and_shrinks_views():
    ws = Workspace(poison=False)
    ws.take("x", 10, np.int64)
    big = ws.take("x", 11, np.int64)  # forces growth to >= 2*10
    assert big.size == 11
    small = ws.take("x", 3, np.int64)
    assert small.size == 3
    assert np.shares_memory(big, small)  # still the same retained buffer


def test_distinct_names_never_alias():
    ws = Workspace(poison=False)
    a = ws.take("a", 8, np.float64)
    b = ws.take("b", 8, np.float64)
    assert not np.shares_memory(a, b)


def test_dtype_change_reallocates():
    ws = Workspace(poison=False)
    ws.take("x", 8, np.float64)
    b = ws.take("x", 8, np.int64)
    assert b.dtype == np.int64


def test_poison_fills_sentinels_per_dtype():
    ws = Workspace(poison=True)
    f = ws.take("f", 5, np.float64)
    assert np.isnan(f).all()
    i = ws.take("i", 5, np.int64)
    assert (i == INT_POISON).all()
    b = ws.take("b", 5, np.bool_)
    assert b.all()


def test_poison_overwrites_previous_round():
    ws = Workspace(poison=True)
    a = ws.take("x", 4, np.float64)
    a.fill(1.0)
    b = ws.take("x", 4, np.float64)
    assert np.isnan(b).all()  # stale values from round 1 are gone


def test_relax_plan_is_cached_per_graph():
    ws = Workspace(poison=False)
    g = path_graph(6, seed=1)
    p1 = ws.relax_plan(g)
    p2 = ws.relax_plan(g)
    assert p1 is p2
    g2 = path_graph(6, seed=2)
    assert ws.relax_plan(g2) is not p1


def test_clear_drops_buffers_and_plans():
    ws = Workspace(poison=False)
    a = ws.take("x", 4, np.float64)
    g = path_graph(4, seed=1)
    p = ws.relax_plan(g)
    ws.clear()
    assert not np.shares_memory(a, ws.take("x", 4, np.float64))
    assert ws.relax_plan(g) is not p


def test_fused_default_env_override(monkeypatch):
    monkeypatch.delenv("REPRO_FUSED", raising=False)
    assert fused_default() is True
    monkeypatch.setenv("REPRO_FUSED", "0")
    assert fused_default() is False
    monkeypatch.setenv("REPRO_FUSED", "1")
    assert fused_default() is True


def test_poison_default_env_override(monkeypatch):
    monkeypatch.delenv("REPRO_POOL_POISON", raising=False)
    assert poison_default() is False
    monkeypatch.setenv("REPRO_POOL_POISON", "1")
    assert poison_default() is True
    assert Workspace().poison is True


def test_take_rejects_nothing_but_is_exact_length():
    ws = Workspace(poison=False)
    assert ws.take("x", 0, np.float64).size == 0


@pytest.mark.parametrize("dtype", [np.float64, np.int64, np.bool_])
def test_take_view_is_writable_and_contiguous(dtype):
    ws = Workspace(poison=True)
    v = ws.take("x", 7, dtype)
    v[:] = np.zeros(7, dtype=dtype)
    assert v.flags["C_CONTIGUOUS"]
