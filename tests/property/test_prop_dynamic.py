"""Derandomized Hypothesis properties for the dynamic subsystem.

The invariant that makes lazy hopset maintenance sound (docs/dynamic.md):
no matter which decremental schedule hits the graph, β-hop distances over
G ∪ (live H) never under-estimate the exact distances on the *mutated*
graph — before maintenance, and still after a ``maintain()`` pass.

``derandomize=True`` keeps the suite deterministic (the repo contract:
CI never flakes on a lucky draw); Hypothesis still sweeps a fixed,
diverse corpus of graphs and schedules.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dynamic import DynamicGraph, DynamicHopset, DynamicSSSP
from repro.graphs.build import from_edges
from repro.hopsets.params import HopsetParams
from repro.pram.machine import PRAM
from repro.sssp.bellman_ford import bellman_ford

PARAMS = HopsetParams(epsilon=0.5)


@st.composite
def connected_graph(draw, max_n=12):
    n = draw(st.integers(min_value=3, max_value=max_n))
    edges = []
    for v in range(1, n):
        u = draw(st.integers(0, v - 1))
        edges.append((u, v, draw(st.floats(min_value=0.5, max_value=5.0))))
    for _ in range(draw(st.integers(0, n))):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u != v:
            edges.append((u, v, draw(st.floats(min_value=0.5, max_value=5.0))))
    return from_edges(n, edges)


# ops are (edge pick, action, severity): the pick indexes into whatever
# edges are still live when the op runs, so every schedule is valid by
# construction no matter how deletions reorder the pool
_OPS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=10**6),
        st.sampled_from(["increase", "delete"]),
        st.floats(min_value=1.1, max_value=4.0),
    ),
    min_size=1,
    max_size=8,
)


def _assert_never_under(dg, dh):
    union = dh.union_graph()
    snap = dg.snapshot()
    budget = 2 * dh.beta + 1
    for s in (0, dg.n // 2):
        exact = bellman_ford(PRAM(), snap, s, hops=max(snap.n - 1, 1)).dist
        approx = bellman_ford(PRAM(), union, s, hops=budget).dist
        fin = np.isfinite(exact)
        assert np.all(approx[fin] >= exact[fin] - 1e-9), "under-estimate"
        assert not np.isfinite(approx[~fin]).any(), "ghost-finite distance"


@given(connected_graph(), _OPS)
@settings(max_examples=30, deadline=None, derandomize=True)
def test_decayed_hopset_never_under_estimates(g, ops):
    dg = DynamicGraph(g)
    dh = DynamicHopset(dg, params=PARAMS, rebuild_below=0.0)
    for pick, action, severity in ops:
        snap = dg.snapshot()
        if snap.num_edges == 0:
            break
        i = pick % snap.num_edges
        u, v = int(snap.edge_u[i]), int(snap.edge_v[i])
        old = dg.edge_weight(u, v)
        if action == "delete":
            dg.delete_edge(u, v)
            dh.on_delete(u, v, old)
        else:
            dg.set_weight(u, v, old * severity)
            dh.on_weight_increase(u, v, old, old * severity)
        _assert_never_under(dg, dh)
    dh.maintain()
    _assert_never_under(dg, dh)


@given(connected_graph(), _OPS)
@settings(max_examples=30, deadline=None, derandomize=True)
def test_repaired_tree_matches_recompute(g, ops):
    dyn = DynamicSSSP(g, 0)
    for pick, action, severity in ops:
        snap = dyn.graph.snapshot()
        if snap.num_edges == 0:
            break
        i = pick % snap.num_edges
        u, v = int(snap.edge_u[i]), int(snap.edge_v[i])
        if action == "delete":
            dyn.apply(("delete", u, v, None))
        else:
            w = dyn.graph.edge_weight(u, v) * severity
            dyn.apply(("update", u, v, w))
        snap = dyn.graph.snapshot()
        full = bellman_ford(
            PRAM(), snap, 0, hops=max(snap.n - 1, 1), early_exit=True
        )
        assert np.array_equal(dyn.dist, full.dist), "repair diverged"
