"""Derandomized Hypothesis properties for the frontier relaxation engine.

Random connected graphs with integer weights (so every float sum is exact
under any association order) and random source sets: the sparse/auto
engines must agree bit-exactly with the dense engine and with the literal
CREW exact-SSSP reference, and never trip the strict ShadowCREW race
detector.  The profile is derandomized (fixed example stream), matching
the other conformance properties in this directory.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.conformance.shadow import ShadowCREW
from repro.graphs.build import from_edges
from repro.pram import reference
from repro.pram.machine import PRAM
from repro.sssp.bellman_ford import bellman_ford

conformance_settings = settings(max_examples=30, deadline=None, derandomize=True)


@st.composite
def connected_graph(draw, max_n=16):
    """Spanning-tree + extra edges; integer weights keep float sums exact."""
    n = draw(st.integers(min_value=3, max_value=max_n))
    edges = []
    for v in range(1, n):
        u = draw(st.integers(0, v - 1))
        edges.append((u, v, float(draw(st.integers(1, 6)))))
    for _ in range(draw(st.integers(0, n))):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u != v:
            edges.append((u, v, float(draw(st.integers(1, 6)))))
    return from_edges(n, edges)


def _strict_shadowed_bf(g, sources, hops, engine, early_exit=True):
    pram = PRAM()
    shadow = ShadowCREW.attach(pram.cost, strict=True, mode="record")
    res = bellman_ford(
        pram, g, sources, hops, early_exit=early_exit, engine=engine
    )
    shadow.detach(pram.cost)
    return res, shadow


@given(connected_graph(), st.integers(min_value=0, max_value=10**9))
@conformance_settings
def test_sparse_engine_matches_literal_exact_sssp(g, pick):
    src = pick % g.n
    res, shadow = _strict_shadowed_bf(g, src, max(g.n - 1, 1), "sparse")
    lit, _ = reference.crew_sssp(g, src)
    assert np.array_equal(res.dist, np.asarray(lit))
    assert shadow.clean, [f.kind for f in shadow.findings]


@given(connected_graph(), st.data())
@conformance_settings
def test_engines_agree_on_random_source_sets(g, data):
    k = data.draw(st.integers(min_value=1, max_value=min(4, g.n)))
    sources = np.array(
        [data.draw(st.integers(0, g.n - 1)) for _ in range(k)], dtype=np.int64
    )  # duplicates allowed: the engine must tolerate them
    hops = data.draw(st.integers(min_value=0, max_value=g.n))
    early_exit = data.draw(st.booleans())
    dense, _ = _strict_shadowed_bf(g, sources, hops, "dense", early_exit)
    for engine in ("sparse", "auto"):
        res, shadow = _strict_shadowed_bf(g, sources, hops, engine, early_exit)
        assert np.array_equal(dense.dist, res.dist), engine
        assert np.array_equal(dense.parent, res.parent), engine
        assert dense.rounds_used == res.rounds_used, engine
        assert shadow.clean, (engine, [f.kind for f in shadow.findings])
