"""Hypothesis property tests for the graph substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.build import from_edges, union_with_edges
from repro.graphs.components import connected_components
from repro.graphs.distances import dijkstra, hop_limited_distances
from repro.pram.machine import PRAM


@st.composite
def random_graph(draw, max_n=25):
    n = draw(st.integers(min_value=2, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=3 * n))
    edges = []
    for _ in range(m):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u == v:
            continue
        w = draw(st.floats(min_value=0.1, max_value=10.0))
        edges.append((u, v, w))
    return n, edges


@given(random_graph())
@settings(max_examples=40, deadline=None)
def test_graph_dedup_keeps_min(args):
    n, edges = args
    g = from_edges(n, edges)
    best: dict[tuple[int, int], float] = {}
    for u, v, w in edges:
        key = (min(u, v), max(u, v))
        best[key] = min(best.get(key, np.inf), w)
    assert g.num_edges == len(best)
    for (u, v), w in best.items():
        assert g.edge_weight(u, v) == w


@given(random_graph())
@settings(max_examples=30, deadline=None)
def test_dijkstra_triangle_inequality(args):
    n, edges = args
    g = from_edges(n, edges)
    d0 = dijkstra(g, 0)
    for u, v, w in zip(*g.edges()):
        # relaxed: d(0,v) <= d(0,u) + w(u,v)
        assert d0[v] <= d0[u] + w + 1e-9
        assert d0[u] <= d0[v] + w + 1e-9


@given(random_graph(), st.integers(min_value=0, max_value=30))
@settings(max_examples=30, deadline=None)
def test_hop_limited_sandwich(args, h):
    n, edges = args
    g = from_edges(n, edges)
    exact = dijkstra(g, 0)
    lim = hop_limited_distances(g, 0, h)
    assert np.all(lim >= exact - 1e-9)          # never better than exact
    full = hop_limited_distances(g, 0, n - 1)
    assert np.allclose(full, exact)              # n-1 hops suffice


@given(random_graph())
@settings(max_examples=30, deadline=None)
def test_components_agree_with_reachability(args):
    n, edges = args
    g = from_edges(n, edges)
    labels = connected_components(PRAM(), g)
    for s in range(min(n, 5)):
        reach = np.isfinite(dijkstra(g, s))
        same = labels == labels[s]
        assert np.array_equal(reach, same)


@given(random_graph(), random_graph())
@settings(max_examples=30, deadline=None)
def test_union_never_increases_distances(a, b):
    n = max(a[0], b[0])
    g = from_edges(n, a[1])
    extra = from_edges(n, b[1])
    u, v, w = extra.edges()
    merged = union_with_edges(g, u, v, w)
    d_g = dijkstra(g, 0)
    d_m = dijkstra(merged, 0)
    assert np.all(d_m <= d_g + 1e-9)
