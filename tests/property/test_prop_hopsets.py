"""Hypothesis property tests for the hopset invariants.

These are the paper's safety invariants, exercised on arbitrary connected
random graphs: the hopset never shortens distances (eq. (1) left side), the
ruling set is always 3-separated and ruling, and the construction is a pure
function of its input.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.build import from_edges
from repro.graphs.distances import dijkstra
from repro.hopsets.clusters import Partition
from repro.hopsets.multi_scale import build_hopset
from repro.hopsets.params import HopsetParams
from repro.hopsets.ruling_sets import ruling_set
from repro.pram.machine import PRAM
from repro.pram.primitives import ceil_log2

from tests.hopsets.helpers import pairwise_virtual_distances, virtual_adjacency


@st.composite
def connected_graph(draw, max_n=18):
    n = draw(st.integers(min_value=3, max_value=max_n))
    edges = []
    for v in range(1, n):  # random spanning tree ⇒ connected
        u = draw(st.integers(0, v - 1))
        w = draw(st.floats(min_value=0.5, max_value=8.0))
        edges.append((u, v, w))
    extra = draw(st.integers(min_value=0, max_value=n))
    for _ in range(extra):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u != v:
            edges.append((u, v, draw(st.floats(min_value=0.5, max_value=8.0))))
    return from_edges(n, edges)


@given(connected_graph(), st.integers(min_value=2, max_value=6))
@settings(max_examples=25, deadline=None)
def test_hopset_edges_never_shorten_distances(g, beta):
    H, _ = build_hopset(g, HopsetParams(epsilon=0.25, beta=beta))
    exact = {s: dijkstra(g, s) for s in range(g.n)}
    for e in H.edges:
        assert e.weight >= exact[e.u][e.v] - 1e-6


@given(connected_graph())
@settings(max_examples=25, deadline=None)
def test_union_graph_preserves_exact_distances(g):
    H, _ = build_hopset(g, HopsetParams(epsilon=0.25, beta=4))
    union = H.union_graph(g)
    for s in range(0, g.n, 3):
        assert np.allclose(dijkstra(union, s), dijkstra(g, s))


@given(connected_graph(), st.floats(min_value=0.5, max_value=6.0))
@settings(max_examples=25, deadline=None)
def test_ruling_set_properties_hold(g, threshold):
    part = Partition.singletons(g.n)
    cands = np.ones(g.n, dtype=bool)
    q = ruling_set(PRAM(), g, part, cands, threshold, hops=2)
    adj = virtual_adjacency(g, part, threshold, 2)
    vd = pairwise_virtual_distances(adj)
    q_idx = np.flatnonzero(q)
    assert q.any()
    for i, a in enumerate(q_idx):
        for b in q_idx[i + 1:]:
            assert vd[a, b] < 0 or vd[a, b] >= 3
    bound = 2 * ceil_log2(max(g.n, 2))
    for c in range(g.n):
        dmin = min((vd[c, s] for s in q_idx if vd[c, s] >= 0), default=-1)
        assert 0 <= dmin <= bound


@given(connected_graph())
@settings(max_examples=15, deadline=None)
def test_construction_is_deterministic(g):
    params = HopsetParams(epsilon=0.25, beta=4)
    a, _ = build_hopset(g, params)
    b, _ = build_hopset(g, params)
    ka = [(e.u, e.v, e.weight, e.scale, e.phase) for e in a.edges]
    kb = [(e.u, e.v, e.weight, e.scale, e.phase) for e in b.edges]
    assert ka == kb


@given(connected_graph(max_n=14))
@settings(max_examples=15, deadline=None)
def test_size_bound_per_scale(g):
    params = HopsetParams(epsilon=0.25, kappa=2, beta=4)
    H, report = build_hopset(g, params)
    bound = g.n ** (1 + 1 / params.kappa)
    for k, cnt in report.per_scale_edges.items():
        assert cnt <= bound
