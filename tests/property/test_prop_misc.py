"""Hypothesis property tests for the newer subsystems.

Covers serialization round trips, the distance oracle, Δ-stepping, the
spanner construction, and zero-edge preprocessing — each against an
independent oracle or algebraic invariant.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.delta_stepping import delta_stepping
from repro.graphs.build import from_edges
from repro.graphs.distances import dijkstra
from repro.graphs.preprocess import contract_zero_edges, lift_distances
from repro.hopsets.multi_scale import build_hopset
from repro.hopsets.params import HopsetParams
from repro.pram.machine import PRAM
from repro.spanners import build_spanner, certify_spanner
from repro.sssp.oracle import HopsetDistanceOracle


@st.composite
def connected_graph(draw, max_n=16, wmin=0.5, wmax=6.0):
    n = draw(st.integers(min_value=3, max_value=max_n))
    edges = []
    for v in range(1, n):
        u = draw(st.integers(0, v - 1))
        edges.append((u, v, draw(st.floats(min_value=wmin, max_value=wmax))))
    for _ in range(draw(st.integers(0, n))):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u != v:
            edges.append((u, v, draw(st.floats(min_value=wmin, max_value=wmax))))
    return from_edges(n, edges)


@given(connected_graph(), st.floats(min_value=0.3, max_value=20.0))
@settings(max_examples=25, deadline=None)
def test_delta_stepping_always_exact(g, delta):
    res = delta_stepping(PRAM(), g, 0, delta=delta)
    assert np.allclose(res.dist, dijkstra(g, 0))


@given(connected_graph())
@settings(max_examples=15, deadline=None)
def test_oracle_sandwich(g):
    H, _ = build_hopset(g, HopsetParams(epsilon=0.25, beta=4))
    oracle = HopsetDistanceOracle(g, H)
    exact = dijkstra(g, 0)
    for t in range(g.n):
        q = oracle.query(0, t)
        assert q >= exact[t] - 1e-9
        assert np.isfinite(q) == np.isfinite(exact[t])


@given(connected_graph())
@settings(max_examples=12, deadline=None)
def test_spanner_subgraph_and_connectivity(g):
    s, _ = build_spanner(g, HopsetParams(epsilon=0.5, kappa=2, rho=0.4))
    cert = certify_spanner(g, s, epsilon=0.5, kappa=2)
    assert cert.is_subgraph
    assert np.isfinite(cert.multiplicative)  # spanning: no pair disconnected


@given(connected_graph())
@settings(max_examples=12, deadline=None)
def test_serialize_roundtrip_property(g):
    import tempfile
    from pathlib import Path

    from repro.serialize import load_hopset, save_hopset

    H, _ = build_hopset(g, HopsetParams(beta=4))
    with tempfile.TemporaryDirectory() as d:
        p = Path(d) / "h.npz"
        save_hopset(p, H)
        H2 = load_hopset(p)
    assert [(e.u, e.v, e.weight, e.scale) for e in H.edges] == [
        (e.u, e.v, e.weight, e.scale) for e in H2.edges
    ]


@given(st.data())
@settings(max_examples=25, deadline=None)
def test_zero_contraction_preserves_limit_distances(data):
    """Distances with zero edges = limit of distances with tiny weights."""
    n = data.draw(st.integers(min_value=3, max_value=10))
    edges = []
    for v in range(1, n):
        u = data.draw(st.integers(0, v - 1))
        w = data.draw(st.sampled_from([0.0, 1.0, 2.5]))
        edges.append((u, v, w))
    u_arr = np.array([e[0] for e in edges], dtype=np.int64)
    v_arr = np.array([e[1] for e in edges], dtype=np.int64)
    w_arr = np.array([e[2] for e in edges], dtype=np.float64)
    zc = contract_zero_edges(PRAM(), n, u_arr, v_arr, w_arr)
    lifted = lift_distances(zc, dijkstra(zc.graph, int(zc.node_of[0])))
    # oracle: replace zeros by a tiny epsilon weight
    tiny = from_edges(n, [(a, b, w if w > 0 else 1e-9) for a, b, w in edges])
    ref = dijkstra(tiny, 0)
    assert np.allclose(lifted, ref, atol=1e-6)
