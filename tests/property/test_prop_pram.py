"""Hypothesis property tests for the PRAM substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.pram.cost import CostModel
from repro.pram.pointer_jumping import pointer_jump
from repro.pram.scan import prefix_sum, segmented_sum
from repro.pram.sort import parallel_lexsort, parallel_sort

ints = st.integers(min_value=-1000, max_value=1000)


@given(st.lists(ints, min_size=1, max_size=200))
@settings(max_examples=60, deadline=None)
def test_prefix_sum_matches_cumsum(xs):
    arr = np.array(xs, dtype=np.int64)
    c = CostModel()
    assert np.array_equal(prefix_sum(c, arr), np.cumsum(arr))
    excl = prefix_sum(c, arr, inclusive=False)
    assert excl[0] == 0
    assert np.array_equal(excl[1:], np.cumsum(arr)[:-1])


@given(st.lists(ints, min_size=1, max_size=200))
@settings(max_examples=60, deadline=None)
def test_sort_is_a_correct_permutation(xs):
    arr = np.array(xs, dtype=np.int64)
    c = CostModel()
    order = parallel_sort(c, arr)
    assert sorted(order.tolist()) == list(range(len(xs)))
    assert np.array_equal(arr[order], np.sort(arr, kind="stable"))


@given(
    st.lists(st.tuples(ints, ints), min_size=1, max_size=150),
)
@settings(max_examples=50, deadline=None)
def test_lexsort_matches_numpy(pairs):
    a = np.array([p[0] for p in pairs], dtype=np.int64)
    b = np.array([p[1] for p in pairs], dtype=np.int64)
    c = CostModel()
    assert np.array_equal(parallel_lexsort(c, (a, b)), np.lexsort((a, b)))


@given(st.data())
@settings(max_examples=50, deadline=None)
def test_pointer_jump_matches_sequential_walk(data):
    n = data.draw(st.integers(min_value=1, max_value=80))
    # random forest: parent[v] < v or parent[v] == v guarantees acyclicity
    parent = np.array(
        [data.draw(st.integers(min_value=0, max_value=v)) for v in range(n)],
        dtype=np.int64,
    )
    weight = np.array(
        [data.draw(st.floats(min_value=0.1, max_value=5.0)) for _ in range(n)]
    )
    c = CostModel()
    root, dist = pointer_jump(c, parent, weight)
    for v in range(n):
        cur, total = v, 0.0
        while parent[cur] != cur:
            total += weight[cur]
            cur = int(parent[cur])
        assert root[v] == cur
        assert abs(dist[v] - total) < 1e-6


@given(st.data())
@settings(max_examples=50, deadline=None)
def test_segmented_sum_matches_loop(data):
    n = data.draw(st.integers(min_value=1, max_value=100))
    k = data.draw(st.integers(min_value=1, max_value=10))
    vals = np.array([data.draw(st.floats(-10, 10)) for _ in range(n)])
    segs = np.array([data.draw(st.integers(0, k - 1)) for _ in range(n)], dtype=np.int64)
    c = CostModel()
    got = segmented_sum(c, vals, segs, k)
    expect = np.zeros(k)
    for v, s in zip(vals, segs):
        expect[s] += v
    assert np.allclose(got, expect)


@given(st.lists(st.tuples(st.integers(0, 10**6), st.integers(0, 20)), min_size=1, max_size=100))
@settings(max_examples=50, deadline=None)
def test_cost_model_totals_are_sums(charges):
    c = CostModel()
    for w, d in charges:
        c.charge(work=w, depth=d)
    assert c.work == sum(w for w, _ in charges)
    assert c.depth == sum(d for _, d in charges)


# -- randomized conformance properties (derandomized: fixed example stream) --
#
# Every draw runs the vectorized primitive under a strict ShadowCREW and
# diffs it against the literal CREW reference program from
# repro.pram.reference — bit-exactly, since inputs are integer-valued.

from repro.conformance.shadow import ShadowCREW  # noqa: E402
from repro.pram import reference  # noqa: E402
from repro.pram.primitives import pscatter, scatter_min  # noqa: E402

conformance_settings = settings(
    max_examples=30, deadline=None, derandomize=True
)


def _strict_shadowed(fn):
    c = CostModel()
    shadow = ShadowCREW.attach(c, strict=True, mode="record")
    out = fn(c)
    shadow.detach(c)
    return out, shadow


@given(st.lists(ints, min_size=0, max_size=120))
@conformance_settings
def test_scan_conforms_to_literal_crew(xs):
    arr = np.array(xs, dtype=np.float64)
    for inclusive in (True, False):
        out, shadow = _strict_shadowed(
            lambda c: prefix_sum(c, arr, inclusive=inclusive)
        )
        lit, _ = reference.crew_prefix_sum(arr.tolist(), inclusive=inclusive)
        assert np.array_equal(out, np.asarray(lit))
        assert shadow.clean


@given(st.lists(ints, min_size=0, max_size=80))
@conformance_settings
def test_sort_conforms_to_literal_crew(xs):
    arr = np.array(xs, dtype=np.int64)
    out, shadow = _strict_shadowed(lambda c: parallel_sort(c, arr))
    lit, _ = reference.crew_sort(arr.tolist())
    assert np.array_equal(out, np.asarray(lit, dtype=np.int64).reshape(out.shape))
    assert shadow.clean


@given(st.data())
@conformance_settings
def test_scatter_conforms_to_literal_crew(data):
    size = data.draw(st.integers(min_value=1, max_value=30))
    # conflict-free update set: a sampled subset of distinct cells
    cells = data.draw(
        st.lists(st.integers(0, size - 1), unique=True, max_size=size)
    )
    idx = np.array(cells, dtype=np.int64)
    vals = np.array(
        [data.draw(ints) for _ in cells], dtype=np.float64
    )
    target = np.zeros(size)
    out, shadow = _strict_shadowed(
        lambda c: pscatter(c, target.copy(), idx, vals)
    )
    lit, _ = reference.crew_scatter(
        target.tolist(), idx.tolist(), vals.tolist(), strict=True
    )
    assert np.array_equal(out, np.asarray(lit))
    assert shadow.clean


@given(st.data())
@conformance_settings
def test_scatter_min_conforms_to_literal_crew(data):
    size = data.draw(st.integers(min_value=1, max_value=20))
    m = data.draw(st.integers(min_value=0, max_value=60))
    idx = np.array(
        [data.draw(st.integers(0, size - 1)) for _ in range(m)], dtype=np.int64
    )
    vals = np.array([data.draw(ints) for _ in range(m)], dtype=np.float64)
    target = np.full(size, 1e9)
    out, shadow = _strict_shadowed(
        lambda c: scatter_min(c, target.copy(), idx, vals)
    )
    lit, _ = reference.crew_scatter_min(
        target.tolist(), idx.tolist(), vals.tolist()
    )
    assert np.array_equal(out, np.asarray(lit))
    assert shadow.clean  # collisions are combine-rule: legal even in strict
