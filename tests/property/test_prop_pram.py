"""Hypothesis property tests for the PRAM substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.pram.cost import CostModel
from repro.pram.pointer_jumping import pointer_jump
from repro.pram.scan import prefix_sum, segmented_sum
from repro.pram.sort import parallel_lexsort, parallel_sort

ints = st.integers(min_value=-1000, max_value=1000)


@given(st.lists(ints, min_size=1, max_size=200))
@settings(max_examples=60, deadline=None)
def test_prefix_sum_matches_cumsum(xs):
    arr = np.array(xs, dtype=np.int64)
    c = CostModel()
    assert np.array_equal(prefix_sum(c, arr), np.cumsum(arr))
    excl = prefix_sum(c, arr, inclusive=False)
    assert excl[0] == 0
    assert np.array_equal(excl[1:], np.cumsum(arr)[:-1])


@given(st.lists(ints, min_size=1, max_size=200))
@settings(max_examples=60, deadline=None)
def test_sort_is_a_correct_permutation(xs):
    arr = np.array(xs, dtype=np.int64)
    c = CostModel()
    order = parallel_sort(c, arr)
    assert sorted(order.tolist()) == list(range(len(xs)))
    assert np.array_equal(arr[order], np.sort(arr, kind="stable"))


@given(
    st.lists(st.tuples(ints, ints), min_size=1, max_size=150),
)
@settings(max_examples=50, deadline=None)
def test_lexsort_matches_numpy(pairs):
    a = np.array([p[0] for p in pairs], dtype=np.int64)
    b = np.array([p[1] for p in pairs], dtype=np.int64)
    c = CostModel()
    assert np.array_equal(parallel_lexsort(c, (a, b)), np.lexsort((a, b)))


@given(st.data())
@settings(max_examples=50, deadline=None)
def test_pointer_jump_matches_sequential_walk(data):
    n = data.draw(st.integers(min_value=1, max_value=80))
    # random forest: parent[v] < v or parent[v] == v guarantees acyclicity
    parent = np.array(
        [data.draw(st.integers(min_value=0, max_value=v)) for v in range(n)],
        dtype=np.int64,
    )
    weight = np.array(
        [data.draw(st.floats(min_value=0.1, max_value=5.0)) for _ in range(n)]
    )
    c = CostModel()
    root, dist = pointer_jump(c, parent, weight)
    for v in range(n):
        cur, total = v, 0.0
        while parent[cur] != cur:
            total += weight[cur]
            cur = int(parent[cur])
        assert root[v] == cur
        assert abs(dist[v] - total) < 1e-6


@given(st.data())
@settings(max_examples=50, deadline=None)
def test_segmented_sum_matches_loop(data):
    n = data.draw(st.integers(min_value=1, max_value=100))
    k = data.draw(st.integers(min_value=1, max_value=10))
    vals = np.array([data.draw(st.floats(-10, 10)) for _ in range(n)])
    segs = np.array([data.draw(st.integers(0, k - 1)) for _ in range(n)], dtype=np.int64)
    c = CostModel()
    got = segmented_sum(c, vals, segs, k)
    expect = np.zeros(k)
    for v, s in zip(vals, segs):
        expect[s] += v
    assert np.allclose(got, expect)


@given(st.lists(st.tuples(st.integers(0, 10**6), st.integers(0, 20)), min_size=1, max_size=100))
@settings(max_examples=50, deadline=None)
def test_cost_model_totals_are_sums(charges):
    c = CostModel()
    for w, d in charges:
        c.charge(work=w, depth=d)
    assert c.work == sum(w for w, _ in charges)
    assert c.depth == sum(d for _, d in charges)
