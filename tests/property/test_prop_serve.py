"""Derandomized Hypothesis properties for the serving layer.

The micro-batcher's contract (``docs/serving.md``) is property-shaped:
batching is a wall-clock optimization only, so **any permutation of a
query set and any partition of it into batches** must yield

* bit-identical per-query replies (each reply is a pure function of the
  request line — the canonical-source determinism contract), and
* identical per-source charged cost (each distinct source pays for
  exactly one exploration, no matter where in the stream it first
  appears or how the stream is sliced).

The profile is derandomized (fixed example stream), matching the other
conformance properties in this directory.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators import erdos_renyi
from repro.hopsets.multi_scale import build_hopset
from repro.hopsets.params import HopsetParams
from repro.serve import OracleServer

serve_settings = settings(max_examples=25, deadline=None, derandomize=True)

_G = erdos_renyi(20, 0.18, seed=801, w_range=(1.0, 3.0))
_H, _ = build_hopset(_G, HopsetParams(epsilon=0.25, beta=4))


@st.composite
def query_lines(draw):
    """A small query set: dist/path over valid and out-of-range vertices."""
    size = draw(st.integers(min_value=1, max_value=12))
    lines = []
    for _ in range(size):
        kind = draw(st.sampled_from(["dist", "path"]))
        u = draw(st.integers(min_value=-1, max_value=_G.n + 1))
        v = draw(st.integers(min_value=-1, max_value=_G.n + 1))
        lines.append(f"{kind} {u} {v}")
    return lines


def _serve(lines, cuts):
    """Serve ``lines`` sliced at ``cuts``; returns (line→reply, charges)."""
    server = OracleServer(_G, _H, cache_size=_G.n, batch_window=0.0)
    try:
        replies = {}
        lo = 0
        for hi in list(cuts) + [len(lines)]:
            for line, reply in zip(lines[lo:hi], server.serve_batch(lines[lo:hi])):
                replies[line] = reply
            lo = hi
        return replies, dict(server.source_charges)
    finally:
        server.close()


@serve_settings
@given(lines=query_lines(), data=st.data())
def test_permutation_and_partition_invariance(lines, data):
    baseline, base_charges = _serve(lines, cuts=[])  # one batch, given order
    permuted = data.draw(st.permutations(lines), label="permutation")
    cuts = sorted(
        data.draw(
            st.lists(
                st.integers(min_value=0, max_value=len(lines)), max_size=4
            ),
            label="partition",
        )
    )
    replies, charges = _serve(permuted, cuts)
    assert replies == baseline  # same reply for the same line, bit-exact
    assert charges == base_charges  # same sources, same charged work


@serve_settings
@given(lines=query_lines())
def test_singleton_batches_match_one_big_batch(lines):
    one_big, charges_big = _serve(lines, cuts=[])
    singles, charges_single = _serve(lines, cuts=list(range(1, len(lines))))
    assert singles == one_big
    assert charges_single == charges_big
