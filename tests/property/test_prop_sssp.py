"""Hypothesis property tests for the SSSP/SPT applications."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.build import from_edges
from repro.graphs.distances import dijkstra
from repro.hopsets.params import HopsetParams
from repro.hopsets.path_reporting import build_path_reporting_hopset
from repro.pram.machine import PRAM
from repro.sssp.bellman_ford import bellman_ford
from repro.sssp.spt import approximate_spt


@st.composite
def connected_graph(draw, max_n=16):
    n = draw(st.integers(min_value=3, max_value=max_n))
    edges = []
    for v in range(1, n):
        u = draw(st.integers(0, v - 1))
        edges.append((u, v, draw(st.floats(min_value=0.5, max_value=5.0))))
    for _ in range(draw(st.integers(0, n))):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u != v:
            edges.append((u, v, draw(st.floats(min_value=0.5, max_value=5.0))))
    return from_edges(n, edges)


@given(connected_graph(), st.integers(min_value=0, max_value=15))
@settings(max_examples=30, deadline=None)
def test_bellman_ford_upper_bounds_and_converges(g, h):
    src = 0
    res = bellman_ford(PRAM(), g, src, hops=h, early_exit=False)
    exact = dijkstra(g, src)
    assert np.all(res.dist >= exact - 1e-9)
    full = bellman_ford(PRAM(), g, src, hops=g.n - 1)
    assert np.allclose(full.dist, exact)


@given(connected_graph())
@settings(max_examples=15, deadline=None)
def test_spt_is_always_a_valid_tree_of_graph_edges(g):
    H, _ = build_path_reporting_hopset(g, HopsetParams(epsilon=0.25, beta=4))
    spt = approximate_spt(g, H, 0)
    exact = dijkstra(g, 0)
    seen_root = 0
    for v in range(g.n):
        p = int(spt.parent[v])
        if v == 0:
            assert p == 0
            seen_root += 1
            continue
        assert g.has_edge(p, v)
        assert np.isclose(spt.dist[v], spt.dist[p] + g.edge_weight(p, v))
        assert spt.dist[v] >= exact[v] - 1e-9
    assert seen_root == 1


@given(connected_graph())
@settings(max_examples=15, deadline=None)
def test_spt_distances_bounded_by_bf_estimates(g):
    """Peeling + pointer jumping never worsens the BF estimates."""
    H, _ = build_path_reporting_hopset(g, HopsetParams(epsilon=0.25, beta=4))
    union = H.union_graph(g)
    budget = min(2 * H.beta + 1, g.n - 1)
    bf = bellman_ford(PRAM(), union, 0, budget)
    spt = approximate_spt(g, H, 0, hop_budget=budget)
    assert np.all(spt.dist <= bf.dist + 1e-6)
