"""Derandomized Hypothesis properties for the warm hopset store.

The store's contract (``docs/hopset_store.md``) is property-shaped:

* the content key is a pure function of ``(graph, params, variant)`` —
  re-serializing the graph through an archive round-trip, or rebuilding
  it from a permuted edge list, must not change the key;
* *any* perturbation — one endpoint, one weight, one extra edge, one
  parameter field, the variant — must change the key;
* a corrupted or truncated artifact is a miss (``store.miss`` traffic),
  never an exception, and a warm hit returns a hopset bit-identical to a
  fresh deterministic build.

The profile is derandomized (fixed example stream), matching the other
conformance properties in this directory.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.build import from_edges
from repro.hopsets.multi_scale import build_hopset
from repro.hopsets.params import HopsetParams
from repro.hopsets.store import (
    HopsetStore,
    build_variant,
    graph_fingerprint,
    store_key,
)
from repro.obs.metrics import MetricsRegistry
from repro.pram.cost import CostModel
from repro.serialize import load_graph, save_graph

store_settings = settings(max_examples=25, deadline=None, derandomize=True)

_PARAMS = HopsetParams(epsilon=0.25, kappa=2, rho=0.4, beta=8)


@st.composite
def connected_graph(draw, max_n=12):
    """Spanning tree + extras; integer weights keep everything exact."""
    n = draw(st.integers(min_value=3, max_value=max_n))
    edges = []
    for v in range(1, n):
        u = draw(st.integers(0, v - 1))
        edges.append((u, v, float(draw(st.integers(1, 6)))))
    for _ in range(draw(st.integers(0, n // 2))):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u != v:
            edges.append((u, v, float(draw(st.integers(1, 6)))))
    return n, edges


def _edge_key(e):
    return (e.u, e.v, e.weight, e.scale, e.phase, e.kind, e.path)


@given(gspec=connected_graph(), data=st.data())
@store_settings
def test_key_invariant_under_reserialization_and_permutation(tmp_path_factory, gspec, data):
    n, edges = gspec
    g = from_edges(n, edges)
    key = store_key(g, _PARAMS)
    # archive round-trip: same canonical arrays, same key
    path = tmp_path_factory.mktemp("store") / "g.npz"
    save_graph(path, g)
    assert store_key(load_graph(path), _PARAMS) == key
    # edge-list permutation: the Graph constructor canonicalizes, same key
    perm = data.draw(st.permutations(edges))
    assert store_key(from_edges(n, perm), _PARAMS) == key
    # and the fingerprint alone is permutation-invariant too
    assert graph_fingerprint(from_edges(n, perm)) == graph_fingerprint(g)


@given(connected_graph(), st.data())
@store_settings
def test_any_graph_perturbation_changes_the_key(gspec, data):
    n, edges = gspec
    g = from_edges(n, edges)
    key = store_key(g, _PARAMS)
    kind = data.draw(st.sampled_from(["weight", "drop", "add", "grow"]))
    if kind == "weight":
        i = data.draw(st.integers(0, len(edges) - 1))
        u, v, w = edges[i]
        mutated = list(edges)
        mutated[i] = (u, v, w + 1.0)
        g2 = from_edges(n, mutated)
    elif kind == "drop" and len(edges) > n - 1:
        i = data.draw(st.integers(n - 1, len(edges) - 1))  # keep the tree
        g2 = from_edges(n, edges[:i] + edges[i + 1:])
    elif kind == "add":
        g2 = from_edges(n + 1, edges + [(0, n, 1.0)])
    else:
        g2 = from_edges(n + 1, edges)  # one extra isolated vertex
    if g2.n == g.n and g2.num_edges == g.num_edges and np.array_equal(
        g2.edge_w, g.edge_w
    ) and np.array_equal(g2.edge_u, g.edge_u) and np.array_equal(g2.edge_v, g.edge_v):
        return  # mutation collapsed to the same graph (duplicate edge dropped)
    assert store_key(g2, _PARAMS) != key


@given(st.data())
@store_settings
def test_any_params_or_variant_perturbation_changes_the_key(data):
    g = from_edges(4, [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 1.0)])
    key = store_key(g, _PARAMS, "plain")
    field = data.draw(
        st.sampled_from(
            ["epsilon", "kappa", "rho", "beta", "tight_weights", "scale_epsilon",
             "variant"]
        )
    )
    if field == "variant":
        other = data.draw(st.sampled_from(["paths", "reduce", "reduce-paths"]))
        assert store_key(g, _PARAMS, other) != key
        return
    mutations = {
        "epsilon": HopsetParams(epsilon=0.3, kappa=2, rho=0.4, beta=8),
        "kappa": HopsetParams(epsilon=0.25, kappa=3, rho=0.4, beta=8),
        "rho": HopsetParams(epsilon=0.25, kappa=2, rho=0.45, beta=8),
        "beta": HopsetParams(epsilon=0.25, kappa=2, rho=0.4, beta=9),
        "tight_weights": HopsetParams(
            epsilon=0.25, kappa=2, rho=0.4, beta=8, tight_weights=False
        ),
        "scale_epsilon": HopsetParams(
            epsilon=0.25, kappa=2, rho=0.4, beta=8, scale_epsilon=True
        ),
    }
    assert store_key(g, mutations[field], "plain") != key


@given(
    gspec=connected_graph(max_n=8),
    damage=st.sampled_from(["truncate", "garbage", "empty"]),
)
@store_settings
def test_corrupt_artifact_is_a_miss_not_an_exception(tmp_path_factory, gspec, damage):
    n, edges = gspec
    g = from_edges(n, edges)
    root = tmp_path_factory.mktemp("store")
    store = HopsetStore(root)
    hopset, _ = build_hopset(g, _PARAMS)
    path = store.save(g, _PARAMS, hopset)
    raw = path.read_bytes()
    if damage == "truncate":
        path.write_bytes(raw[: max(len(raw) // 3, 1)])
    elif damage == "garbage":
        path.write_bytes(b"\x00" * len(raw))
    else:
        path.write_bytes(b"")
    cost = CostModel()
    registry = MetricsRegistry.attach(cost)
    try:
        assert store.load(g, _PARAMS, cost=cost) is None
        assert registry.counter("primitive.store.miss.calls").value == 1
        assert registry.counter("primitive.store.miss.corrupt.calls").value == 1
        # rewrite and the hit comes back, bit-identical to the fresh build
        store.save(g, _PARAMS, hopset)
        warm = store.load(g, _PARAMS, cost=cost)
        assert registry.counter("primitive.store.hit.calls").value == 1
    finally:
        registry.detach(cost)
    assert warm is not None
    assert sorted(map(_edge_key, warm.edges)) == sorted(map(_edge_key, hopset.edges))


def test_store_traffic_events(tmp_path):
    """hit/miss traffic: absent -> miss.absent, present -> hit."""
    g = from_edges(4, [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 1.0)])
    store = HopsetStore(tmp_path)
    cost = CostModel()
    registry = MetricsRegistry.attach(cost)
    try:
        assert store.load(g, _PARAMS, cost=cost) is None
        hopset, _ = build_hopset(g, _PARAMS)
        store.save(g, _PARAMS, hopset)
        assert store.load(g, _PARAMS, cost=cost) is not None
    finally:
        registry.detach(cost)
    labels = set(registry.primitive_labels())
    assert "store.miss" in labels and "store.miss.absent" in labels
    assert "store.hit" in labels


def test_build_variant_slugs():
    assert build_variant() == "plain"
    assert build_variant(paths=True) == "paths"
    assert build_variant(reduce=True) == "reduce"
    assert build_variant(paths=True, reduce=True) == "reduce-paths"
