"""Window-edge behavior of the micro-batcher, plus histogram quantiles.

The batching contract (docs/serving.md) says batching is a wall-clock
optimization only: no arrival timing may drop a request.  The edge these
tests pin is the gather-window boundary — a request landing *exactly*
when the window closes is popped with the closing batch, and a request
landing after the collector has taken its batch is served by the next
one; neither is ever lost.  Alongside: ``histogram_quantile`` on the
degenerate histograms (empty, single-bucket) the serving health table
feeds it.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.obs.export import histogram_quantile
from repro.obs.metrics import Histogram
from repro.serve import batcher as batcher_mod
from repro.serve.batcher import MicroBatcher


class _Clock:
    """Controllable stand-in for ``time.monotonic`` inside the batcher.

    ``read`` fires on the first lookup — the collector computing the
    window deadline — so a test can sequence itself against the window
    actually being open before it advances the clock.
    """

    def __init__(self) -> None:
        self.t = 0.0
        self.read = threading.Event()

    def monotonic(self) -> float:
        self.read.set()
        return self.t


def test_arrival_exactly_at_window_close_is_batched_not_dropped(monkeypatch):
    """A submit landing at the precise expiry instant rides the closing batch.

    The clock is frozen, then jumped to exactly the window's deadline —
    the collector's ``remaining`` computes to exactly 0, the boundary
    case — while a second request is already pending.  Both must come
    out of the same evaluation; nothing may be dropped on the edge.
    """
    clock = _Clock()
    monkeypatch.setattr(batcher_mod, "time", clock)
    seen: list[list[object]] = []

    def evaluate(items):
        seen.append(list(items))
        return [f"ok {i}" for i in items]

    b = MicroBatcher(evaluate, max_batch=8, window_s=0.05)
    f1 = b.submit("a")
    # first monotonic() read == the deadline computation: the window is open
    assert clock.read.wait(2.0)
    # a second request arrives and the clock lands exactly on the deadline
    f2 = b.submit("b")
    clock.t = 0.05
    with b._cv:
        b._cv.notify()
    assert f1.result(timeout=5.0) == "ok a"
    assert f2.result(timeout=5.0) == "ok b"
    assert ["a", "b"] in seen  # one batch carried both; neither was dropped
    b.close()
    assert b.submitted == 2


def test_arrival_after_window_expiry_joins_next_batch():
    """A request arriving once the window closed is served by the *next* batch."""
    release = threading.Event()
    first_running = threading.Event()
    seen: list[list[object]] = []

    def evaluate(items):
        seen.append(list(items))
        if len(seen) == 1:
            first_running.set()
            assert release.wait(5.0)
        return [f"ok {i}" for i in items]

    b = MicroBatcher(evaluate, max_batch=8, window_s=0.002)
    f1 = b.submit("a")
    assert first_running.wait(2.0)
    # batch 1 is being evaluated -> its window is over; this arrival must
    # open (and be served by) a fresh batch, not vanish with the old one
    f2 = b.submit("late")
    release.set()
    assert f1.result(timeout=2.0) == "ok a"
    assert f2.result(timeout=2.0) == "ok late"
    assert seen[0] == ["a"]
    assert seen[1] == ["late"]
    assert b.batches == 2
    b.close()


def test_zero_window_still_serves_every_submission():
    """``window_s=0`` evaluates immediately; back-to-back submits all resolve."""
    seen: list[list[object]] = []

    def evaluate(items):
        seen.append(list(items))
        return [f"ok {i}" for i in items]

    b = MicroBatcher(evaluate, max_batch=4, window_s=0.0)
    futures = [b.submit(i) for i in range(10)]
    assert [f.result(timeout=2.0) for f in futures] == [f"ok {i}" for i in range(10)]
    b.close()
    assert sum(len(batch) for batch in seen) == 10
    assert b.submitted == 10


# -- histogram_quantile degenerate inputs ------------------------------------


def test_histogram_quantile_empty_is_zero():
    h = Histogram("empty")
    for q in (0.0, 0.5, 1.0):
        assert histogram_quantile(h, q) == 0.0


def test_histogram_quantile_single_bucket_clamps_to_observed_value():
    h = Histogram("single")
    h.observe(7.0)
    # one bucket, one observation: every quantile is the exact value
    # (clamped into [min, max]), not the bucket's power-of-two bound
    for q in (0.0, 0.25, 0.5, 0.99, 1.0):
        assert histogram_quantile(h, q) == 7.0


def test_histogram_quantile_single_bucket_repeated_observations():
    h = Histogram("repeat")
    for _ in range(5):
        h.observe(3.0)
    assert h.count == 5 and len(h.buckets) == 1
    assert histogram_quantile(h, 0.5) == 3.0
    assert histogram_quantile(h, 1.0) == 3.0


def test_histogram_quantile_rejects_out_of_range_q():
    h = Histogram("bad-q")
    h.observe(1.0)
    with pytest.raises(ValueError):
        histogram_quantile(h, 1.5)
    with pytest.raises(ValueError):
        histogram_quantile(h, -0.1)
