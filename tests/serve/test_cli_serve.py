"""CLI: ``repro serve`` probe/warm-boot flows and ``repro store {ls,gc}``."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    root = tmp_path_factory.mktemp("cli")
    g = root / "g.npz"
    h = root / "h.npz"
    assert main(["gen", str(g), "--family", "layered", "--n", "30", "--seed", "9"]) == 0
    assert main(["build", str(g), str(h), "--beta", "8"]) == 0
    return g, h


def test_serve_probe_answers_and_prints_stats(artifacts, capsys):
    g, h = artifacts
    assert main(["serve", str(g), str(h), "--probe", "dist 0 5",
                 "--batch-window", "0"]) == 0
    out = capsys.readouterr().out
    assert "ok dist 0 5 " in out
    assert "serve stats:" in out
    assert "tier-2 explorations" in out and "matrix passes" in out


def test_serve_probe_mssp_block_loop_matches_matrix(artifacts, capsys):
    """--mssp-block 1 (per-source loop) serves the identical reply."""
    g, h = artifacts
    probes = ["--probe", "dist 0 5", "--probe", "dist 3 7"]
    assert main(["serve", str(g), str(h), *probes, "--batch-window", "0"]) == 0
    matrix = [
        line for line in capsys.readouterr().out.splitlines()
        if line.startswith("ok ")
    ]
    assert main(["serve", str(g), str(h), *probes, "--batch-window", "0",
                 "--mssp-block", "1"]) == 0
    looped = [
        line for line in capsys.readouterr().out.splitlines()
        if line.startswith("ok ")
    ]
    assert matrix == looped


def test_serve_warm_requires_store(artifacts, capsys):
    g, h = artifacts
    assert main(["serve", str(g), "--warm", "--probe", "dist 0 1"]) == 2
    assert "--warm needs --store" in capsys.readouterr().err


def test_serve_without_hopset_or_warm_errors(artifacts, capsys):
    g, _ = artifacts
    assert main(["serve", str(g), "--probe", "dist 0 1"]) == 2
    assert "need a hopset artifact" in capsys.readouterr().err


def test_serve_warm_boot_files_then_hits(artifacts, tmp_path, capsys):
    g, _ = artifacts
    store = tmp_path / "store"
    # cold boot: store miss -> fresh build, filed under the content key
    assert main(["serve", str(g), "--warm", "--store", str(store),
                 "--probe", "dist 0 5", "--batch-window", "0"]) == 0
    cold = capsys.readouterr().out
    cold_reply = next(l for l in cold.splitlines() if l.startswith("ok dist"))

    assert main(["store", "ls", str(store)]) == 0
    listing = capsys.readouterr().out
    assert "1 artifacts" in listing and "hopset-" in listing

    # warm boot: the filed artifact serves the bit-identical answer
    assert main(["serve", str(g), "--warm", "--store", str(store),
                 "--probe", "dist 0 5", "--batch-window", "0"]) == 0
    warm = capsys.readouterr().out
    warm_reply = next(l for l in warm.splitlines() if l.startswith("ok dist"))
    assert warm_reply == cold_reply

    # gc everything away; the listing goes back to empty
    assert main(["store", "gc", str(store), "--keep-newest", "0"]) == 0
    assert "removed 1 artifacts" in capsys.readouterr().out
    assert main(["store", "ls", str(store)]) == 0
    assert "0 artifacts" in capsys.readouterr().out


def test_store_gc_without_bounds_is_an_error(tmp_path, capsys):
    assert main(["store", "gc", str(tmp_path)]) == 2
    assert "--keep-newest" in capsys.readouterr().err
