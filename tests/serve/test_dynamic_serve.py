"""Dynamic serving: mutation verbs, surgical invalidation, segmentation.

The trust chain this file pins down:

* protocol — ``update U V W`` / ``delete U V`` parse, render, and
  round-trip; malformed weights are structured errors;
* static servers answer mutation verbs with ``err unsupported`` and
  keep serving;
* **consistency** — after any mutation, every served ``dist`` equals an
  out-of-band recompute over the server's *current* union (a stale
  cache entry is exactly a violation of this);
* **safety** — served distances never under-estimate exact distances
  on the mutated graph (1e-9 float slack, the repo convention);
* invalidation is surgical: a worsening far from a cached tree leaves
  the vector resident, an improvement evicts everything;
* mutation verbs segment a batch, so a query behind an update in the
  same batch observes the new weight;
* a mutation-free stream through a dynamic server is byte-identical to
  the static server on the same hopset.
"""

import numpy as np
import pytest

from repro.graphs.generators import erdos_renyi, grid_graph
from repro.hopsets.params import HopsetParams
from repro.hopsets.path_reporting import build_path_reporting_hopset
from repro.pram.machine import PRAM
from repro.serve import OracleServer
from repro.serve.protocol import ProtocolError, Request, parse_line
from repro.sssp.bellman_ford import bellman_ford
from repro.sssp.mssp import explore_batch

PARAMS = HopsetParams(epsilon=0.5)


def _make_server(**kw):
    g = erdos_renyi(40, 0.12, seed=77, w_range=(1.0, 3.0))
    return OracleServer(g, None, dynamic=True, params=PARAMS, **kw)


# -- protocol ----------------------------------------------------------------


def test_update_line_parses_and_round_trips():
    req = parse_line("update 3 7 2.5")
    assert req == Request("update", 3, 7, 2.5)
    assert req.line() == "update 3 7 2.5"
    assert parse_line(req.line()) == req


def test_delete_line_parses_and_round_trips():
    req = parse_line("delete 3 7")
    assert req == Request("delete", 3, 7)
    assert parse_line(req.line()) == req


@pytest.mark.parametrize(
    "line",
    [
        "update 3 7",          # missing weight
        "update 3 7 2.5 9",    # extra operand
        "update 3 x 2.5",      # non-integer vertex
        "update 3 7 heavy",    # non-numeric weight
        "update 3 7 0",        # non-positive
        "update 3 7 -1.5",
        "update 3 7 inf",      # non-finite
        "update 3 7 nan",
        "delete 3",            # arity
    ],
)
def test_malformed_mutations_are_bad_requests(line):
    with pytest.raises(ProtocolError) as exc:
        parse_line(line)
    assert exc.value.code == "bad-request"


def test_static_server_rejects_mutations():
    g = grid_graph(5, 5, seed=11, w_range=(1.0, 2.0))
    H, _ = build_path_reporting_hopset(g, PARAMS)
    server = OracleServer(g, H)
    try:
        assert server.handle_line("update 0 1 2.0").startswith("err unsupported")
        assert server.handle_line("delete 0 1").startswith("err unsupported")
        # the connectionkeeps serving afterwards
        assert server.handle_line("dist 0 1").startswith("ok dist")
    finally:
        server.close()


def test_static_server_requires_hopset():
    from repro.graphs.errors import InvalidGraphError

    g = grid_graph(4, 4, seed=1, w_range=(1.0, 2.0))
    with pytest.raises(InvalidGraphError):
        OracleServer(g, None)


# -- consistency + safety under a mutation stream ----------------------------


def _recompute(server, u: int, v: int) -> float:
    """Out-of-band recompute of ``dist u v`` on the server's current union."""
    res = explore_batch(
        server.oracle.union,
        np.array([u], dtype=np.int64),
        server.oracle.hop_budget,
    )
    return float(res.dist[0][v])


def _mutation_stream(g, steps: int, seed: int):
    """Alternating mutate/query schedule over a live-edge pool."""
    rng = np.random.default_rng(seed)
    ops = []
    for _ in range(steps):
        i = int(rng.integers(0, g.edge_u.size))
        u, v = int(g.edge_u[i]), int(g.edge_v[i])
        r = rng.random()
        if r < 0.2:
            ops.append(("delete", u, v, None))
        elif r < 0.6:
            ops.append(("update", u, v, float(rng.uniform(2.0, 8.0))))
        else:
            ops.append(("update", u, v, float(rng.uniform(0.3, 1.0))))
    return ops


def test_served_answers_track_mutations():
    server = _make_server()
    rng = np.random.default_rng(5)
    g = server.dynamic.graph
    try:
        for kind, u, v, w in _mutation_stream(g, 25, seed=13):
            if kind == "delete" and not g.has_edge(u, v):
                assert server.handle_line(f"delete {u} {v}").startswith("err")
                continue
            line = f"delete {u} {v}" if kind == "delete" else f"update {u} {v} {w!r}"
            assert server.handle_line(line).startswith("ok")
            # a handful of random probes: served == recompute, bit-exact
            snap = g.snapshot()
            exact = None
            for _ in range(3):
                a = int(rng.integers(0, g.n))
                b = int(rng.integers(0, g.n))
                if a == b:
                    continue
                reply = server.handle_line(f"dist {a} {b}")
                assert reply.startswith("ok dist")
                got = float(reply.split()[-1])
                want = _recompute(server, a, b)
                assert got == want or (np.isnan(got) and np.isnan(want)) or (
                    np.isinf(got) and np.isinf(want)
                ), f"stale cache: served {got!r}, recompute {want!r}"
                # safety: never under-estimate the exact mutated metric
                if exact is None or exact[0] != a:
                    exact = (a, bellman_ford(PRAM(), snap, a, hops=g.n - 1).dist)
                assert got >= float(exact[1][b]) - 1e-9
    finally:
        server.close()


def test_replayed_mutation_log_pins_bitwise(tmp_path):
    log = tmp_path / "queries.log"
    server = _make_server(log_path=log)
    g = server.dynamic.graph
    try:
        replies = []
        for kind, u, v, w in _mutation_stream(g, 12, seed=29):
            if kind == "delete" and not g.has_edge(u, v):
                continue
            line = f"delete {u} {v}" if kind == "delete" else f"update {u} {v} {w!r}"
            replies.append(server.handle_line(line))
            replies.append(server.handle_line(f"dist {u} {v}"))
            replies.append(server.handle_line(f"path {u} {v}"))
    finally:
        server.close()
    from repro.serve.server import read_query_log

    lines = read_query_log(log)
    fresh = _make_server()
    try:
        assert fresh.replay(lines) == replies
    finally:
        fresh.close()


# -- surgical invalidation ---------------------------------------------------


def test_improvement_invalidates_all_tiers():
    server = _make_server()
    g = server.dynamic.graph
    try:
        server.handle_line("dist 0 5")
        server.handle_line("dist 7 5")
        assert server.oracle.is_cached(0) and server.oracle.is_cached(7)
        assert len(server.pairs) == 2
        u, v = int(g.edge_u[0]), int(g.edge_v[0])
        w = g.edge_weight(u, v)
        server.handle_line(f"update {u} {v} {w / 2!r}")
        assert not server.oracle.is_cached(0)
        assert not server.oracle.is_cached(7)
        assert len(server.pairs) == 0
    finally:
        server.close()


def test_worsening_far_from_tree_keeps_vector():
    # two islands: mutations on one cannot touch the other's trees
    from repro.graphs.build import from_edges

    g = from_edges(
        6,
        [(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0), (4, 5, 1.0), (3, 5, 3.0)],
    )
    server = OracleServer(g, None, dynamic=True, params=PARAMS)
    try:
        server.handle_line("dist 0 2")  # caches source 0 (island A)
        assert server.oracle.is_cached(0)
        server.handle_line("update 3 4 5.0")  # worsen island B
        assert server.oracle.is_cached(0), "untouched tree was evicted"
        assert len(server.pairs) == 1  # its tier-0 entry survived too
        # ...and the surviving entries still serve the right values
        assert float(server.handle_line("dist 0 2").split()[-1]) == 2.0
        # island B reroutes: 3-5-4 = 3.0 + 1.0 beats the worsened direct 5.0
        assert float(server.handle_line("dist 3 4").split()[-1]) == 4.0
    finally:
        server.close()


def test_worsening_on_tree_evicts_and_reroutes():
    from repro.graphs.build import from_edges

    # 0-1-2 cheap chain plus a 0-2 detour the tree ignores until needed
    g = from_edges(3, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0)])
    server = OracleServer(g, None, dynamic=True, params=PARAMS)
    try:
        assert float(server.handle_line("dist 0 2").split()[-1]) == 2.0
        server.handle_line("update 1 2 10.0")
        assert not server.oracle.is_cached(0)
        assert float(server.handle_line("dist 0 2").split()[-1]) == 5.0
    finally:
        server.close()


# -- batch segmentation ------------------------------------------------------


def test_batch_segments_at_mutation_verbs():
    from repro.graphs.build import from_edges

    g = from_edges(3, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0)])
    server = OracleServer(g, None, dynamic=True, params=PARAMS)
    try:
        replies = server.serve_batch(
            ["dist 0 2", "update 1 2 10.0", "dist 0 2"]
        )
        assert float(replies[0].split()[-1]) == 2.0
        assert replies[1] == "ok update 1 2 10.0"
        assert float(replies[2].split()[-1]) == 5.0
    finally:
        server.close()


def test_mutation_free_stream_matches_static_server():
    g = erdos_renyi(36, 0.12, seed=21, w_range=(1.0, 3.0))
    H, _ = build_path_reporting_hopset(g, PARAMS)
    rng = np.random.default_rng(2)
    lines = [
        f"{'dist' if rng.random() < 0.7 else 'path'} "
        f"{int(rng.integers(0, g.n))} {int(rng.integers(0, g.n))}"
        for _ in range(40)
    ]
    static = OracleServer(g, H)
    dynamic = OracleServer(g, H, dynamic=True, params=PARAMS)
    try:
        assert dynamic.serve_batch(lines) == static.serve_batch(lines)
    finally:
        static.close()
        dynamic.close()


# -- observability -----------------------------------------------------------


def test_mutation_traffic_and_stats():
    from repro.pram.cost import CostHook

    server = _make_server()
    g = server.dynamic.graph
    seen = []

    class Hook(CostHook):
        def on_traffic(self, label, calls, elements, reads, writes):
            seen.append(label)

    server.pram.cost.subscribe(Hook())
    try:
        u, v = int(g.edge_u[0]), int(g.edge_v[0])
        server.handle_line(f"dist {u} {v}")
        server.handle_line(f"update {u} {v} {g.edge_weight(u, v) / 2!r}")
        server.handle_line(f"delete {u} {v}")
        assert "serve.update.update" in seen
        assert "serve.update.delete" in seen
        assert "serve.update.evicted_vectors" in seen
        stats = server.stats()
        assert stats["dynamic"]["updates"] == 2
        assert stats["dynamic"]["hopset"]["records"] >= 0
        # the stats verb JSON-serializes the dynamic section too
        assert server.handle_line("stats").startswith("ok stats")
    finally:
        server.close()
