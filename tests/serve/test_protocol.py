"""The serve line protocol: parsing, formatting, structured errors."""

import math

import pytest

from repro.serve.protocol import (
    ProtocolError,
    Request,
    format_dist,
    format_error,
    format_path,
    format_stats,
    parse_line,
)


def test_parse_pair_requests():
    assert parse_line("dist 3 7") == Request("dist", 3, 7)
    assert parse_line("path 0 12") == Request("path", 0, 12)
    assert parse_line("  dist  3   7 \n") == Request("dist", 3, 7)


def test_parse_nullary_requests():
    assert parse_line("stats") == Request("stats")
    assert parse_line("quit\n") == Request("quit")


@pytest.mark.parametrize(
    "line",
    ["", "   ", "frobnicate 1 2", "dist 1", "dist 1 2 3", "dist a b",
     "path 1 2.5", "stats 3", "quit now"],
)
def test_parse_rejects_malformed(line):
    with pytest.raises(ProtocolError) as exc:
        parse_line(line)
    assert exc.value.code == "bad-request"
    assert exc.value.message


def test_canonical_line_round_trips():
    for line in ("dist 3 7", "path 0 12", "stats", "quit"):
        assert parse_line(line).line() == line


def test_format_dist_repr_round_trips_bitwise():
    # repr(float) is the shortest string that reparses to the same bits
    value = 4.815619533438085
    reply = format_dist(0, 5, value)
    assert reply == f"ok dist 0 5 {value!r}"
    parsed = float(reply.rsplit(" ", 1)[1])
    assert math.copysign(1, parsed) == math.copysign(1, value)
    assert parsed.hex() == value.hex()


def test_format_path_and_unreachable():
    assert format_path(0, 3, [0, 2, 3]) == "ok path 0 3 0 2 3"
    assert format_path(0, 3, None) == "ok path 0 3 unreachable"


def test_format_stats_and_error_stay_one_line():
    assert format_stats('{"a": 1}') == 'ok stats {"a": 1}'
    reply = format_error("bad-request", "no\nnewlines\nallowed")
    assert "\n" not in reply
    assert reply.startswith("err bad-request ")
