"""The serve-vs-offline differential matrix — the serving trust substrate.

Every served reply must be *bit-exact* against the offline
:class:`HopsetDistanceOracle` reference under the canonical-source
contract (``docs/serving.md``): ``dist U V`` equals
``offline.distances_from(U)[V]`` and ``path U V`` walks U's exploration
tree, for every graph family × batch size {1, 8, 64} × worker count
{1, 2} × cache state {cold, warm}.  The query stream interleaves mixed
sources deliberately — batching, arrival order, pair-cache hits, and
sharded execution may only change wall-clock, never one bit of a reply.
"""

import numpy as np
import pytest

from repro.graphs.generators import erdos_renyi, grid_graph, layered_hop_graph
from repro.hopsets.multi_scale import build_hopset
from repro.hopsets.params import HopsetParams
from repro.pram.backends import ShardedBackend
from repro.serve import OracleServer
from repro.serve.protocol import format_dist, format_path
from repro.sssp.oracle import HopsetDistanceOracle, tree_path

_FAMILIES = {
    "er": lambda: erdos_renyi(36, 0.12, seed=401, w_range=(1.0, 3.0)),
    "grid": lambda: grid_graph(6, 6, seed=402, w_range=(1.0, 2.0)),
    "layered": lambda: layered_hop_graph(10, 4, seed=403),
}

BATCH_SIZES = (1, 8, 64)
WORKER_COUNTS = (1, 2)


@pytest.fixture(scope="module")
def built():
    """graph + hopset per family, built once."""
    out = {}
    for name, make in _FAMILIES.items():
        g = make()
        H, _ = build_hopset(g, HopsetParams(epsilon=0.25, beta=8))
        out[name] = (g, H)
    return out


@pytest.fixture(scope="module")
def sharded():
    """One shared 2-worker pool for the whole matrix (servers never close it)."""
    be = ShardedBackend(workers=2, min_arcs=1)
    yield be
    be.close()


def _stream(n: int) -> list[str]:
    """A mixed-source interleaved request stream (dist + path) over [0, n)."""
    rng = np.random.default_rng(8)
    sources = rng.choice(n, size=5, replace=False)
    lines = []
    for i in range(40):
        u = int(sources[i % len(sources)])  # interleave: s0, s1, s2, s0, ...
        v = int(rng.integers(0, n))
        lines.append(f"{'path' if i % 5 == 4 else 'dist'} {u} {v}")
    # a few reversed pairs: must re-explore, not reuse the other endpoint
    lines += [f"dist {v} {u}" for line in lines[:3]
              for _, u, v in [line.split()]]
    return lines


def _offline_replies(g, H, lines: list[str]) -> list[str]:
    """The reference transcript, computed on a fresh serial offline oracle."""
    offline = HopsetDistanceOracle(g, H, cache_size=g.n)
    replies = []
    for line in lines:
        kind, u, v = line.split()
        u, v = int(u), int(v)
        dist, parent = offline.vectors_from(u)
        if kind == "dist":
            value = 0.0 if u == v else float(dist[v])
            replies.append(format_dist(u, v, value))
        else:
            walk = (
                [u] if u == v
                else tree_path(parent, u, v, g.n) if np.isfinite(dist[v])
                else None
            )
            replies.append(format_path(u, v, walk))
    return replies


@pytest.mark.parametrize("family", sorted(_FAMILIES))
@pytest.mark.parametrize("batch", BATCH_SIZES)
@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_served_replies_bit_exact_vs_offline(built, sharded, family, batch, workers):
    g, H = built[family]
    lines = _stream(g.n)
    expected = _offline_replies(g, H, lines)
    backend = sharded if workers == 2 else None
    server = OracleServer(g, H, cache_size=g.n, backend=backend, batch_window=0.0)
    try:
        cold = []
        for lo in range(0, len(lines), batch):
            cold.extend(server.serve_batch(lines[lo:lo + batch]))
        assert cold == expected, f"cold differential failed ({family})"
        warm = []  # second pass: tier-0/tier-1 hits must change nothing
        for lo in range(0, len(lines), batch):
            warm.extend(server.serve_batch(lines[lo:lo + batch]))
        assert warm == expected, f"warm differential failed ({family})"
        assert server.pairs.hits > 0  # the warm pass did exercise tier 0
        if workers == 2:
            assert not sharded.failed
    finally:
        server.close()


def test_interleaved_submit_matches_offline(built):
    """The micro-batched concurrent path yields the same transcript."""
    g, H = built["er"]
    lines = _stream(g.n)
    expected = _offline_replies(g, H, lines)
    server = OracleServer(g, H, cache_size=g.n, batch_window=0.005)
    try:
        futs = [server.submit_line(line) for line in lines]
        assert [f.result(timeout=60) for f in futs] == expected
        assert server.batcher.batches >= 1
    finally:
        server.close()
