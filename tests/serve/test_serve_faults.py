"""Serving-layer fault injection.

The degradation contract (``docs/serving.md``): a sharded worker killed
mid-batch trips the backend's permanent serial fallback, the server
reports ``serve.fallback.worker-death`` traffic *during that batch*, and
every reply — including the one whose exploration died — is bit-identical
to in-process serving.  Malformed or out-of-range lines get structured
``err`` replies and never take the server down.
"""

import os
import signal

import pytest

from repro.graphs.generators import erdos_renyi
from repro.hopsets.multi_scale import build_hopset
from repro.hopsets.params import HopsetParams
from repro.pram.backends import ShardedBackend
from repro.serve import OracleServer
from repro.sssp.oracle import HopsetDistanceOracle


@pytest.fixture(scope="module")
def setup():
    g = erdos_renyi(40, 0.12, seed=701, w_range=(1.0, 3.0))
    H, _ = build_hopset(g, HopsetParams(epsilon=0.25, beta=8))
    return g, H


def _fallback_count(server, kind: str) -> int:
    c = server.registry.counters.get(
        f"primitive.serve.fallback.{kind}.elements"
    )
    return c.value if c is not None else 0


def test_worker_death_mid_batch_degrades_bit_correct(setup):
    g, H = setup
    offline = HopsetDistanceOracle(g, H, cache_size=g.n)
    be = ShardedBackend(workers=2, min_arcs=1, round_timeout=10.0)
    server = OracleServer(g, H, cache_size=g.n, backend=be, batch_window=0.0)
    try:
        warm = server.serve_batch(["dist 0 5"])  # spins the pool up
        assert be.sharded_rounds > 0 and be._procs
        assert server.degraded is None

        victim = be._procs[0]
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=10.0)
        assert not victim.is_alive()

        # the batch whose exploration hits the dead worker: every reply
        # still lands, and the fallback event fires inside the batch
        batch = ["dist 0 5", "dist 7 12", "path 7 3", "dist 12 7"]
        replies = server.serve_batch(batch)
        assert server.degraded == "worker-death"
        assert be.failed and be.failure_kind == "worker-death"
        assert _fallback_count(server, "worker-death") == 1
        assert replies[0] == warm[0]  # cached answer untouched by the death
        assert replies[1] == f"ok dist 7 12 {float(offline.distances_from(7)[12])!r}"
        assert replies[3] == f"ok dist 12 7 {float(offline.distances_from(12)[7])!r}"
        assert replies[2].startswith("ok path 7 3 ")

        # ...and the server keeps serving (serial) afterwards, bit-correct
        later = server.serve_batch(["dist 15 2"])
        assert later[0] == f"ok dist 15 2 {float(offline.distances_from(15)[2])!r}"
        assert server.stats()["degraded"] == "worker-death"
        assert _fallback_count(server, "worker-death") == 1  # fired once
    finally:
        server.close()
        be.close()


def test_server_on_already_failed_backend_learns_state(setup):
    """A late subscriber still sees the degradation (listener replay)."""
    g, H = setup
    be = ShardedBackend(workers=2, min_arcs=1, round_timeout=10.0)
    try:
        from repro.pram.machine import PRAM
        from repro.sssp.bellman_ford import bellman_ford

        bellman_ford(PRAM(backend=be), g, 0, 2, early_exit=False)
        assert be._procs
        os.kill(be._procs[0].pid, signal.SIGKILL)
        bellman_ford(PRAM(backend=be), g, 0, 2, early_exit=False)  # trips _fail
        assert be.failed

        server = OracleServer(g, H, backend=be, batch_window=0.0)
        assert server.degraded == be.failure_kind
        assert _fallback_count(server, be.failure_kind) == 1
        assert server.handle_line("dist 3 8").startswith("ok dist 3 8 ")
        server.close()
    finally:
        be.close()


def test_malformed_lines_never_kill_the_server(setup):
    g, H = setup
    server = OracleServer(g, H, batch_window=0.0)
    try:
        hostile = [
            "", "   ", "dist", "dist 1", "dist 1 2 3", "dist 1e3 2",
            "dist nan nan", f"dist 0 {g.n}", "dist -5 0", "path 0 10**6",
            "DIST 0 1", "quit extra", "stats now", "\x00\x01\x02",
        ]
        replies = server.serve_batch(hostile)
        assert all(r.startswith("err ") for r in replies)
        assert all("\n" not in r for r in replies)
        codes = {r.split()[1] for r in replies}
        assert codes == {"bad-request", "out-of-range"}
        # structured traffic per code, and the server still answers
        counters = server.registry.counters
        assert counters["primitive.serve.error.bad-request.elements"].value > 0
        assert counters["primitive.serve.error.out-of-range.elements"].value > 0
        assert server.handle_line("dist 0 1").startswith("ok dist 0 1 ")
        assert server.errors == len(hostile)
    finally:
        server.close()
