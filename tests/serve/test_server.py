"""OracleServer behavior: tiers, batching, TCP transport, replay, metrics."""

import socket
import threading

import numpy as np
import pytest

from repro.graphs.generators import erdos_renyi
from repro.hopsets.multi_scale import build_hopset
from repro.hopsets.params import HopsetParams
from repro.obs.export import histogram_quantile, serve_health_report
from repro.obs.metrics import Histogram
from repro.serve import MicroBatcher, OracleServer, PairCache, serve_tcp
from repro.serve.server import read_query_log
from repro.sssp.oracle import HopsetDistanceOracle


@pytest.fixture(scope="module")
def setup():
    g = erdos_renyi(36, 0.12, seed=401, w_range=(1.0, 3.0))
    H, _ = build_hopset(g, HopsetParams(epsilon=0.25, beta=8))
    return g, H


@pytest.fixture
def server(setup):
    g, H = setup
    srv = OracleServer(g, H, batch_window=0.0)
    yield srv
    srv.close()


# -- tiered answering --------------------------------------------------------


def test_dist_matches_offline_oracle(setup, server):
    g, H = setup
    offline = HopsetDistanceOracle(g, H)
    for u, v in ((0, 5), (5, 0), (3, 3), (7, 31)):
        assert server.query(u, v) == float(offline.distances_from(u)[v]) if u != v \
            else server.query(u, v) == 0.0


def test_pair_cache_hit_skips_all_lower_tiers(server):
    first = server.query(2, 9)
    hits0 = server.pairs.hits
    oracle_hits0 = server.oracle.hits
    assert server.query(2, 9) == first
    assert server.pairs.hits == hits0 + 1
    assert server.oracle.hits == oracle_hits0  # tier 1 never consulted


def test_canonical_source_no_endpoint_swap(setup, server):
    """dist U V always reads U's vector, even when only V is cached."""
    g, H = setup
    server.query(4, 11)  # caches source 4
    assert server.oracle.is_cached(4)
    explorations = server.oracle.explorations
    got = server.query(11, 4)  # must explore 11, not swap to cached 4
    assert server.oracle.explorations == explorations + 1
    offline = HopsetDistanceOracle(g, H)
    assert got == float(offline.distances_from(11)[4])


def test_path_reply_follows_first_named_endpoint(setup, server):
    g, H = setup
    walk = server.path(0, 13)
    assert walk is not None and walk[0] == 0 and walk[-1] == 13
    assert server.path(13, 13) == [13]


def test_source_charges_attribute_work(server):
    server.query(6, 1)
    assert server.source_charges.get(6, 0) > 0
    charged = server.source_charges[6]
    server.query(6, 2)  # cached source: no new exploration work
    assert server.source_charges[6] == charged


# -- request handling --------------------------------------------------------


def test_handle_line_replies(server):
    assert server.handle_line("dist 0 0") == "ok dist 0 0 0.0"
    assert server.handle_line("path 5 5") == "ok path 5 5 5"
    assert server.handle_line("stats").startswith("ok stats {")
    assert server.handle_line("quit") == "ok bye"


def test_errors_are_replies_not_crashes(server):
    assert server.handle_line("dist 0 999").startswith("err out-of-range ")
    assert server.handle_line("dist -1 0").startswith("err out-of-range ")
    assert server.handle_line("nope").startswith("err bad-request ")
    assert server.handle_line("dist x y").startswith("err bad-request ")
    # the server keeps serving afterwards
    assert server.handle_line("dist 0 1").startswith("ok dist 0 1 ")
    assert server.errors == 4


def test_mixed_batch_keeps_per_line_isolation(server):
    replies = server.serve_batch(["dist 0 3", "garbage", "dist 0 3", "stats"])
    assert replies[0].startswith("ok dist 0 3 ")
    assert replies[1].startswith("err bad-request ")
    assert replies[2] == replies[0]
    assert replies[3].startswith("ok stats ")


def test_submit_line_futures_resolve_in_arrival_order(server):
    futs = [server.submit_line(f"dist {u} {v}")
            for u in (0, 1, 2) for v in (3, 4)]
    replies = [f.result(timeout=30) for f in futs]
    direct = [server.handle_line(f"dist {u} {v}")
              for u in (0, 1, 2) for v in (3, 4)]
    assert replies == direct


# -- query log + replay ------------------------------------------------------


def test_query_log_records_and_replays_bitwise(setup, tmp_path):
    g, H = setup
    log = tmp_path / "queries.log"
    srv = OracleServer(g, H, batch_window=0.0, log_path=log)
    replies = srv.serve_batch(
        ["dist 0 5", "path 0 9", "stats", "bad line", "dist 5 0"]
    )
    srv.close()
    lines = read_query_log(log)
    # stats (nondeterministic reply) and the malformed line are not recorded
    assert lines == ["dist 0 5", "path 0 9", "dist 5 0"]
    fresh = OracleServer(g, H, batch_window=0.0)
    replayed = fresh.replay(lines)
    fresh.close()
    assert replayed == [replies[0], replies[1], replies[4]]


# -- TCP transport -----------------------------------------------------------


def test_tcp_round_trip_and_quit(setup):
    g, H = setup
    srv = OracleServer(g, H, batch_window=0.0)
    tcp = serve_tcp(srv)
    thread = threading.Thread(target=tcp.serve_forever, daemon=True)
    thread.start()
    try:
        with socket.create_connection(("127.0.0.1", tcp.port), timeout=30) as s:
            fh = s.makefile("rw")
            fh.write("dist 1 4\nbogus\npath 1 4\nquit\n")
            fh.flush()
            assert fh.readline().strip() == srv.handle_line("dist 1 4")
            assert fh.readline().startswith("err bad-request ")
            assert fh.readline().strip() == srv.handle_line("path 1 4")
            assert fh.readline().strip() == "ok bye"
            assert fh.readline() == ""  # connection closed after quit
    finally:
        tcp.shutdown()
        tcp.server_close()
        srv.close()


def test_request_limit_callback_fires_once(setup):
    g, H = setup
    srv = OracleServer(g, H, batch_window=0.0)
    fired = []
    srv.on_request_limit(2, lambda: fired.append(True))
    srv.handle_line("dist 0 1")
    assert not fired
    srv.handle_line("dist 0 2")
    srv.handle_line("dist 0 3")
    assert fired == [True]
    srv.close()


# -- observability -----------------------------------------------------------


def test_serve_traffic_and_health_report(setup):
    g, H = setup
    srv = OracleServer(g, H, batch_window=0.0)
    srv.serve_batch(["dist 0 5", "dist 0 5", "dist 0 99"])
    counters = srv.registry.counters
    assert counters["primitive.serve.request.elements"].value == 3
    assert counters["primitive.serve.batch.elements"].value == 3
    assert counters["primitive.serve.cache.pair.hit.elements"].value == 1
    assert counters["primitive.serve.error.out-of-range.elements"].value == 1
    assert srv.registry.histograms["serve.latency_us"].count == 3
    report = serve_health_report(srv.registry)
    assert "requests" in report and "pair cache hit rate" in report
    assert "errors (out-of-range)" in report
    srv.close()


def test_health_report_empty_without_serve_traffic(setup):
    g, H = setup
    srv = OracleServer(g, H, batch_window=0.0)
    assert serve_health_report(srv.registry) == ""
    srv.close()


def test_histogram_quantile_bucket_bounds():
    h = Histogram("t")
    for v in (1, 2, 3, 100):
        h.observe(v)
    assert histogram_quantile(h, 0.0) == 1.0
    assert histogram_quantile(h, 0.5) == 2.0  # bucket upper bound of value 2
    assert histogram_quantile(h, 1.0) == 100.0  # clamped to the exact max
    assert histogram_quantile(Histogram("e"), 0.5) == 0.0
    with pytest.raises(ValueError):
        histogram_quantile(h, 1.5)


# -- component edge cases ----------------------------------------------------


def test_pair_cache_lru_and_disable():
    pc = PairCache(capacity=2)
    pc.put(0, 1, 1.0)
    pc.put(0, 2, 2.0)
    assert pc.get(0, 1) == 1.0  # touch: (0,2) is now LRU
    pc.put(0, 3, 3.0)  # evicts (0,2)
    assert pc.get(0, 2) is None
    assert pc.get(0, 1) == 1.0
    assert len(pc) == 2
    off = PairCache(capacity=0)
    off.put(0, 1, 1.0)
    assert off.get(0, 1) is None and len(off) == 0
    with pytest.raises(ValueError):
        PairCache(capacity=-1)


def test_batcher_caps_and_propagates_failures():
    seen = []

    def evaluate(items):
        seen.append(list(items))
        if "boom" in items:
            raise RuntimeError("evaluate failed")
        return [i * 2 for i in items]

    mb = MicroBatcher(evaluate, max_batch=4, window_s=0.0)
    futs = [mb.submit(i) for i in range(3)]
    assert [f.result(timeout=30) for f in futs] == [0, 2, 4]
    bad = mb.submit("boom")
    with pytest.raises(RuntimeError, match="evaluate failed"):
        bad.result(timeout=30)
    ok = mb.submit(5)  # the collector survives a failed batch
    assert ok.result(timeout=30) == 10
    mb.close()
    with pytest.raises(RuntimeError):
        mb.submit(1)
    assert all(len(b) <= 4 for b in seen)
    assert mb.submitted == 5


def test_batcher_window_gathers_company():
    order = []

    def evaluate(items):
        order.append(list(items))
        return items

    mb = MicroBatcher(evaluate, max_batch=64, window_s=0.2)
    futs = [mb.submit(i) for i in range(8)]
    for f in futs:
        f.result(timeout=30)
    mb.close()
    # all 8 landed within one 200ms window: far fewer batches than items
    assert len(order) < 8
    assert [i for batch in order for i in batch] == list(range(8))


def test_server_validates_constructor_args(setup):
    g, H = setup
    with pytest.raises(ValueError):
        OracleServer(g, H, pair_cache=-1).close()
    srv = OracleServer(g, H, pair_cache=0, batch_window=0.0)
    srv.query(0, 1)
    srv.query(0, 1)
    assert srv.pairs.hits == 0  # tier 0 disabled
    assert srv.oracle.hits == 1  # tier 1 took the repeat
    srv.close()


def test_stats_payload_shape(server):
    stats = server.stats()
    assert set(stats) >= {
        "requests", "errors", "batches", "pair_cache", "source_cache",
        "sources_charged", "backend", "degraded",
    }
    assert stats["degraded"] is None
    assert isinstance(stats["pair_cache"], dict)


def test_batch_numpy_answers_are_plain_floats(server):
    # served floats must be Python floats (repr round-trip, JSON-safe)
    value = server.query(1, 7)
    assert type(value) is float
    assert not isinstance(value, np.floating)
