"""Near-additive spanners (the [EM19] companion, §1.2/§1.4)."""

import numpy as np
import pytest

from repro.graphs.generators import (
    erdos_renyi,
    grid_graph,
    hypercube_graph,
    path_graph,
    preferential_attachment,
)
from repro.hopsets.errors import CertificationError
from repro.hopsets.params import HopsetParams
from repro.pram.machine import PRAM
from repro.spanners import build_spanner, certify_spanner


PARAMS = HopsetParams(epsilon=0.5, kappa=2, rho=0.4)


def test_spanner_is_subgraph():
    g = erdos_renyi(50, 0.15, seed=301)
    s, _ = build_spanner(g, PARAMS)
    cert = certify_spanner(g, s, epsilon=0.5, kappa=2)
    assert cert.is_subgraph


def test_spanner_preserves_connectivity():
    g = erdos_renyi(40, 0.2, seed=302)
    s, _ = build_spanner(g, PARAMS)
    from repro.graphs.properties import is_connected

    assert is_connected(s)


def test_spanner_sparsifies_dense_graphs():
    g = erdos_renyi(60, 0.5, seed=303)  # ~885 edges
    s, _ = build_spanner(g, PARAMS)
    assert s.num_edges < g.num_edges / 2
    cert = certify_spanner(g, s, epsilon=0.5, kappa=2)
    assert s.num_edges <= 3 * cert.size_bound  # n^{1+1/2} up to log-ish slack


def test_spanner_stretch_shape():
    """d_S ≤ (1+ε)·d_G + β with a small measured β."""
    for make, seed in ((lambda: erdos_renyi(48, 0.25, seed=304), 0),
                       (lambda: hypercube_graph(5), 0),
                       (lambda: preferential_attachment(48, 3, seed=305), 0)):
        g = make()
        s, _ = build_spanner(g, PARAMS)
        cert = certify_spanner(g, s, epsilon=0.5, kappa=2)
        assert np.isfinite(cert.additive_at_eps)
        assert cert.holds(beta=8), (
            f"additive error {cert.additive_at_eps} too large"
        )


def test_spanner_of_sparse_graph_is_everything():
    # a tree/path has no redundancy: the spanner must keep it all to stay
    # connected
    g = path_graph(20)
    s, _ = build_spanner(g, PARAMS)
    cert = certify_spanner(g, s, epsilon=0.5, kappa=2)
    assert cert.multiplicative == 1.0
    assert s.num_edges == g.num_edges


def test_spanner_deterministic():
    g = erdos_renyi(40, 0.3, seed=306)
    a, _ = build_spanner(g, PARAMS)
    b, _ = build_spanner(g, PARAMS)
    assert np.array_equal(a.edge_u, b.edge_u)
    assert np.array_equal(a.edge_v, b.edge_v)


def test_spanner_ignores_input_weights():
    g1 = erdos_renyi(30, 0.3, seed=307, w_range=(1.0, 1.0))
    g2 = erdos_renyi(30, 0.3, seed=307, w_range=(1.0, 9.0))
    s1, _ = build_spanner(g1, PARAMS)
    s2, _ = build_spanner(g2, PARAMS)
    assert np.array_equal(s1.edge_u, s2.edge_u)
    assert np.array_equal(s1.edge_v, s2.edge_v)


def test_spanner_report_phases():
    g = erdos_renyi(60, 0.3, seed=308)
    _, rep = build_spanner(g, PARAMS)
    assert rep.phases >= 1
    assert rep.work > 0 and rep.depth > 0
    assert rep.clusters_per_phase[0] == 60


def test_spanner_trivial_inputs():
    from repro.graphs.build import from_edges

    s, rep = build_spanner(from_edges(3, []), PARAMS)
    assert s.num_edges == 0 and rep.phases == 0


def test_certify_rejects_non_subgraph():
    g = path_graph(5)
    from repro.graphs.build import from_edges

    fake = from_edges(5, [(0, 4, 1.0)])
    with pytest.raises(CertificationError):
        certify_spanner(g, fake, epsilon=0.5, kappa=2)


def test_certify_size_mismatch():
    g = path_graph(5)
    from repro.graphs.build import from_edges

    with pytest.raises(CertificationError):
        certify_spanner(g, from_edges(4, []), epsilon=0.5, kappa=2)


def test_grid_spanner_quality():
    g = grid_graph(7, 7)
    s, _ = build_spanner(g, PARAMS)
    cert = certify_spanner(g, s, epsilon=0.5, kappa=2)
    assert cert.holds(beta=8)
