"""PRAM Bellman–Ford: correctness, hop budgets, parent trees, costs."""

import numpy as np
import pytest

from repro.graphs.build import from_edges
from repro.graphs.distances import dijkstra, hop_limited_distances
from repro.graphs.errors import VertexError
from repro.graphs.generators import erdos_renyi, path_graph
from repro.pram.machine import PRAM
from repro.sssp.bellman_ford import bellman_ford


def test_matches_dijkstra_with_full_budget():
    g = erdos_renyi(30, 0.15, seed=41, w_range=(1.0, 3.0))
    res = bellman_ford(PRAM(), g, 0, hops=g.n - 1)
    assert np.allclose(res.dist, dijkstra(g, 0))


def test_matches_reference_hop_limited():
    g = erdos_renyi(25, 0.12, seed=42, w_range=(1.0, 3.0))
    for h in (1, 3, 6):
        res = bellman_ford(PRAM(), g, 3, hops=h, early_exit=False)
        assert np.allclose(res.dist, hop_limited_distances(g, 3, h))


def test_parent_tree_consistent():
    g = erdos_renyi(30, 0.15, seed=43)
    res = bellman_ford(PRAM(), g, 0, hops=g.n - 1)
    assert res.parent[0] == 0
    for v in range(1, g.n):
        if np.isfinite(res.dist[v]):
            p = int(res.parent[v])
            assert np.isclose(res.dist[v], res.dist[p] + g.edge_weight(p, v))
        else:
            assert res.parent[v] == -1


def test_early_exit_counts_rounds():
    g = path_graph(10, weight=1.0)
    res = bellman_ford(PRAM(), g, 0, hops=100)
    # converges after 9 productive rounds + 1 fixpoint check round
    assert res.rounds_used <= 10


def test_multi_source_nearest():
    g = path_graph(7, weight=1.0)
    res = bellman_ford(PRAM(), g, np.array([0, 6]), hops=6)
    assert np.allclose(res.dist, [0, 1, 2, 3, 2, 1, 0])
    assert res.parent[2] == 1 and res.parent[4] == 5


def test_unreachable_vertices():
    g = from_edges(4, [(0, 1, 1.0)])
    res = bellman_ford(PRAM(), g, 0, hops=3)
    assert res.dist[2] == np.inf and res.parent[2] == -1


def test_zero_hop_budget():
    g = path_graph(4)
    res = bellman_ford(PRAM(), g, 1, hops=0)
    assert res.dist[1] == 0 and np.all(~np.isfinite(np.delete(res.dist, 1)))


def test_input_validation():
    g = path_graph(4)
    with pytest.raises(VertexError):
        bellman_ford(PRAM(), g, 9, hops=2)
    with pytest.raises(VertexError):
        bellman_ford(PRAM(), g, 0, hops=-1)
    with pytest.raises(VertexError):
        bellman_ford(PRAM(), g, np.zeros(0, dtype=np.int64), hops=2)


def test_depth_scales_with_rounds_not_n():
    pram = PRAM()
    g = erdos_renyi(64, 0.3, seed=44)  # dense: converges in few rounds
    res = bellman_ford(pram, g, 0, hops=63)
    assert res.rounds_used < 10
    # per round: O(log n) depth — scatter-min combine tree, plus the charged
    # mode decision / frontier gather / convergence detection of the auto
    # engine (each another O(log n) term; see docs/frontier.md)
    assert pram.cost.depth <= res.rounds_used * 40 + 10


def test_early_exit_charges_the_detection_round():
    """Regression: the no-change detection is charged in every engine.

    Source 0 is isolated, so the very first round changes nothing and
    early exit fires after exactly one round.  The charged depth is locked
    per engine: 2 init rounds, the relax round, and the *charged*
    convergence detection — dense pays compare(1) + OR-reduce(⌈log 3⌉+1),
    sparse pays gather(1) + compare(1) + frontier select(⌈log 3⌉+1), auto
    adds its mode decision (map(1) + sum-reduce(1)) on top of a dense
    round.  Before the fix the detection was free and these read 6/—/—.
    """
    g = from_edges(3, [(1, 2, 1.0)])
    locked = {"dense": 9, "sparse": 8, "auto": 11}
    for engine, depth in locked.items():
        pram = PRAM()
        res = bellman_ford(pram, g, 0, hops=5, engine=engine)
        assert res.rounds_used == 1, engine
        assert pram.cost.depth == depth, engine


def test_deterministic_parents_under_ties():
    # two equal-weight parents for vertex 2: 0-1-2 and 0-3-2 all weight 1
    g = from_edges(4, [(0, 1, 1), (1, 2, 1), (0, 3, 1), (3, 2, 1)])
    r1 = bellman_ford(PRAM(), g, 0, hops=3)
    r2 = bellman_ford(PRAM(), g, 0, hops=3)
    assert r1.parent[2] == r2.parent[2] == 1  # smallest tail wins ties
