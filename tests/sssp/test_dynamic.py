"""Decremental SSSP oracle (the §1.4 future-work direction)."""

import numpy as np
import pytest

from repro.graphs.distances import dijkstra
from repro.graphs.errors import InvalidGraphError
from repro.graphs.generators import erdos_renyi, path_graph
from repro.hopsets.params import HopsetParams
from repro.sssp.dynamic import DecrementalSSSP


@pytest.fixture
def oracle():
    g = erdos_renyi(30, 0.15, seed=1301, w_range=(1.0, 3.0))
    return DecrementalSSSP(g, HopsetParams(epsilon=0.25, beta=8), rebuild_below=0.3)


def test_initial_answers_exact_at_default_budget(oracle):
    exact = dijkstra(oracle.graph, 0)
    assert np.allclose(oracle.distances(0), exact)


def test_safety_after_weight_increases(oracle):
    rng = np.random.default_rng(5)
    for _ in range(8):
        u, v, w = (int(oracle.graph.edge_u[0]), int(oracle.graph.edge_v[0]),
                   float(oracle.graph.edge_w[0]))
        i = int(rng.integers(0, oracle.graph.num_edges))
        u, v = int(oracle.graph.edge_u[i]), int(oracle.graph.edge_v[i])
        w = float(oracle.graph.edge_w[i])
        oracle.increase_weight(u, v, w * 2.0)
        exact = dijkstra(oracle.graph, 0)
        got = oracle.distances(0, hop_budget=17)
        fin = np.isfinite(exact)
        assert np.all(got[fin] >= exact[fin] - 1e-9)  # never under-estimates


def test_exact_at_full_budget_after_updates(oracle):
    for i in range(0, oracle.graph.num_edges, 5):
        u, v = int(oracle.graph.edge_u[0]), int(oracle.graph.edge_v[0])
        oracle.increase_weight(u, v, float(oracle.graph.edge_weight(u, v)) + 1.0)
    exact = dijkstra(oracle.graph, 3)
    assert np.allclose(oracle.distances(3), exact)


def test_deletion_supported_and_safe():
    g = erdos_renyi(24, 0.2, seed=1302, w_range=(1.0, 2.0))
    oracle = DecrementalSSSP(g, HopsetParams(beta=6), rebuild_below=0.0)
    u, v = int(g.edge_u[3]), int(g.edge_v[3])
    oracle.delete_edge(u, v)
    assert not oracle.graph.has_edge(u, v)
    exact = dijkstra(oracle.graph, 0)
    got = oracle.distances(0, hop_budget=11)
    fin = np.isfinite(exact)
    assert np.all(got[fin] >= exact[fin] - 1e-9)


def test_invalidation_is_targeted():
    """Modifying one edge must not kill unrelated hopset records."""
    g = path_graph(40, w_range=(1.0, 2.0), seed=1303)
    oracle = DecrementalSSSP(g, HopsetParams(epsilon=0.25, beta=8), rebuild_below=0.0)
    total = len(oracle.hopset.edges)
    # an edge at the far end affects only records whose paths cross it
    oracle.increase_weight(38, 39, 100.0)
    assert 0 < oracle.live_records() < total + 1
    assert oracle.live_fraction > 0.3  # most of the hopset survives


def test_weight_decrease_rejected(oracle):
    u, v = int(oracle.graph.edge_u[0]), int(oracle.graph.edge_v[0])
    w = float(oracle.graph.edge_weight(u, v))
    with pytest.raises(InvalidGraphError):
        oracle.increase_weight(u, v, w / 2)


def test_unknown_edge_rejected(oracle):
    # find a non-edge
    g = oracle.graph
    for u in range(g.n):
        for v in range(u + 1, g.n):
            if not g.has_edge(u, v):
                with pytest.raises(InvalidGraphError):
                    oracle.increase_weight(u, v, 5.0)
                with pytest.raises(InvalidGraphError):
                    oracle.delete_edge(u, v)
                return


def test_rebuild_triggers_and_restores():
    g = path_graph(24, w_range=(1.0, 2.0), seed=1304)
    oracle = DecrementalSSSP(g, HopsetParams(epsilon=0.25, beta=8), rebuild_below=0.9)
    # hammer central edges until the live fraction crosses the threshold
    for i in range(10):
        u, v = 11, 12
        oracle.increase_weight(u, v, float(oracle.graph.edge_weight(u, v)) + 1.0)
    assert oracle.rebuilds >= 1
    assert oracle.live_fraction >= 0.9  # fresh hopset after rebuild
    exact = dijkstra(oracle.graph, 0)
    assert np.allclose(oracle.distances(0), exact)


def test_rebuild_threshold_boundary_is_strict():
    """Rebuild fires on ``live_fraction < rebuild_below`` — not ``<=``.

    Probe the exact fraction one update produces, then pin both sides of
    the boundary: a threshold *equal* to the observed fraction must not
    rebuild, while the next representable float above it must.
    """
    g = path_graph(24, w_range=(1.0, 2.0), seed=1305)
    params = HopsetParams(epsilon=0.25, beta=8)
    probe = DecrementalSSSP(g, params, rebuild_below=0.0)
    probe.increase_weight(11, 12, float(probe.graph.edge_weight(11, 12)) + 1.0)
    f = probe.live_fraction
    assert 0.0 < f < 1.0  # the probe update must kill some but not all

    at = DecrementalSSSP(g, params, rebuild_below=f)
    at.increase_weight(11, 12, float(at.graph.edge_weight(11, 12)) + 1.0)
    assert at.rebuilds == 0
    assert at.live_fraction == f

    above = DecrementalSSSP(
        g, params, rebuild_below=float(np.nextafter(f, 1.0))
    )
    above.increase_weight(11, 12, float(above.graph.edge_weight(11, 12)) + 1.0)
    assert above.rebuilds == 1
    assert above.live_fraction == 1.0


def test_noop_weight_increase_changes_nothing(oracle):
    u, v = int(oracle.graph.edge_u[0]), int(oracle.graph.edge_v[0])
    w = float(oracle.graph.edge_weight(u, v))
    live_before = oracle.live_records()
    oracle.increase_weight(u, v, w)
    assert oracle.live_records() == live_before
    assert oracle.updates == 0
