"""The matrix engine's load-bearing contract: batching is invisible.

``explore_batch`` promises that row r of an (S × V) sweep — ``dist[r]``,
``parent[r]``, ``rounds_used[r]``, and the *charge stream* of
``costs[r]`` (work, depth, phase totals) — is bit-identical to an
independent single-source ``bellman_ford(..., engine="dense")`` run, at
every batch width and on every execution backend.  The differential
matrix here pins that promise over the conformance smoke families ×
S ∈ {1, 2, 8, 32} × {serial, sharded:2}, with the batch side running on
a **poisoned** buffer pool so any kernel that reads scratch before
writing it produces loudly wrong output.

Also pinned: shadowed rows (a strict CREW race detector attached to one
row's cost model) transparently delegate to the solo kernel and stay
clean; ``approximate_mssd`` produces the same result matrix through the
matrix engine as through the per-source loop; the ``REPRO_MSSP`` knob
parses as documented; and the registered ``relax_arcs_batch``
conformance runner passes strict.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
import pytest

from repro.conformance.diff import SMOKE_FAMILIES, run_primitive_diffs
from repro.conformance.shadow import ShadowCREW
from repro.graphs.errors import VertexError
from repro.pram.backends import ShardedBackend
from repro.pram.cost import CostModel
from repro.pram.errors import InvalidStepError
from repro.pram.machine import PRAM
from repro.pram.workspace import Workspace
from repro.sssp.bellman_ford import bellman_ford
from repro.sssp.mssp import (
    DEFAULT_MSSP_BLOCK,
    explore_batch,
    mssp_block_default,
)

_N = 24
_SEED = 13
_BETA = 8
_WIDTHS = (1, 2, 8, 32)


@pytest.fixture(scope="module")
def sharded():
    backend = ShardedBackend(workers=2, min_arcs=1)
    yield backend
    backend.close()


@lru_cache(maxsize=None)
def _graph(family: str):
    return SMOKE_FAMILIES[family](_N, _SEED)


@lru_cache(maxsize=None)
def _solo(family: str, source: int):
    """The solo dense reference a matrix row must replay bit-exactly."""
    g = _graph(family)
    pram = PRAM(CostModel())
    res = bellman_ford(pram, g, source, _BETA, engine="dense")
    return (
        res.dist, res.parent, res.rounds_used,
        pram.cost.work, pram.cost.depth, dict(pram.cost.phase_totals),
    )


def _sources(n: int, s: int) -> np.ndarray:
    # wraps past n (S=32 > N=24), so wide blocks carry duplicate sources:
    # rows must stay independent even when two compute the same exploration
    return (np.arange(s, dtype=np.int64) * 5 + 3) % n


@pytest.mark.parametrize("width", ["serial", "sharded:2"])
@pytest.mark.parametrize("s", _WIDTHS, ids=lambda s: f"S{s}")
@pytest.mark.parametrize("family", sorted(SMOKE_FAMILIES))
def test_matrix_rows_match_solo_runs_bit_exactly(family, s, width, sharded):
    g = _graph(family)
    src = _sources(g.n, s)
    backend = sharded if width == "sharded:2" else None
    res = explore_batch(
        g, src, _BETA, workspace=Workspace(poison=True), backend=backend
    )
    assert res.dist.shape == (s, g.n) and res.parent.shape == (s, g.n)
    for r in range(s):
        dist, parent, rounds, work, depth, phases = _solo(family, int(src[r]))
        assert np.array_equal(res.dist[r], dist), (family, r)
        assert np.array_equal(res.parent[r], parent), (family, r)
        assert res.rounds_used[r] == rounds, (family, r)
        # the charged cost stream, not just the outputs: bit-equal totals
        assert (res.costs[r].work, res.costs[r].depth) == (work, depth), (family, r)
        assert dict(res.costs[r].phase_totals) == phases, (family, r)


def test_batch_width_is_invisible_to_every_row():
    """The same row charged identically whether batched with 0 or 31 others."""
    g = _graph("er")
    narrow = explore_batch(g, np.array([3]), _BETA)
    wide = explore_batch(g, _sources(g.n, 32), _BETA)
    r = int(np.flatnonzero(wide.sources == 3)[0])
    assert np.array_equal(narrow.dist[0], wide.dist[r])
    assert np.array_equal(narrow.parent[0], wide.parent[r])
    assert (narrow.costs[0].work, narrow.costs[0].depth) == (
        wide.costs[r].work, wide.costs[r].depth
    )


def test_shadowed_row_delegates_to_solo_and_stays_crew_clean():
    """A row under a strict shadow detector takes the solo path, unchanged.

    Attaching :class:`ShadowCREW` flips the row's ``wants_footprints``,
    which the batch kernel answers by delegating that row to the solo
    ``prelax_arcs`` — its write-footprints stream out and are validated
    while every other row still rides the matrix.  Outputs and charges
    must not move.
    """
    g = _graph("layered")
    src = _sources(g.n, 8)
    costs = [CostModel() for _ in src]
    shadow = ShadowCREW.attach(costs[3], strict=True, mode="record")
    res = explore_batch(g, src, _BETA, costs=costs, workspace=Workspace(poison=True))
    shadow.detach(costs[3])
    assert shadow.clean, [f.kind for f in shadow.findings]
    for r in range(src.size):
        dist, parent, rounds, work, depth, _ = _solo("layered", int(src[r]))
        assert np.array_equal(res.dist[r], dist), r
        assert np.array_equal(res.parent[r], parent), r
        assert (res.costs[r].work, res.costs[r].depth) == (work, depth), r


def test_zero_hop_budget_is_the_init_only_run():
    g = _graph("path")
    res = explore_batch(g, np.array([0, 5]), 0)
    base = [
        bellman_ford(PRAM(CostModel()), g, s, 0, engine="dense")
        for s in (0, 5)
    ]
    for r in range(2):
        assert np.array_equal(res.dist[r], base[r].dist)
        assert np.array_equal(res.parent[r], base[r].parent)
        assert res.rounds_used[r] == 0


def test_out_matrices_are_filled_in_place():
    g = _graph("grid")
    dist = np.full((2, g.n), -7.0)
    parent = np.full((2, g.n), -7, dtype=np.int64)
    res = explore_batch(g, np.array([1, 2]), _BETA, out=(dist, parent))
    assert res.dist is dist and res.parent is parent
    assert np.isfinite(dist[0, 1]) and dist[0, 1] == 0.0


def test_explore_batch_input_validation():
    g = _graph("er")
    with pytest.raises(VertexError):
        explore_batch(g, np.array([0]), -1)
    with pytest.raises(VertexError):
        explore_batch(g, np.zeros(0, dtype=np.int64), _BETA)
    with pytest.raises(VertexError):
        explore_batch(g, np.array([g.n]), _BETA)
    with pytest.raises(VertexError):
        explore_batch(g, np.array([0, 1]), _BETA, costs=[CostModel()])


# -- the REPRO_MSSP knob ------------------------------------------------------


@pytest.mark.parametrize(
    "raw,expected",
    [
        ("", DEFAULT_MSSP_BLOCK), ("on", DEFAULT_MSSP_BLOCK),
        ("matrix", DEFAULT_MSSP_BLOCK), ("batch", DEFAULT_MSSP_BLOCK),
        ("off", 0), ("loop", 0), ("none", 0),
        ("7", 7), ("1", 1), ("0", 0),
    ],
)
def test_mssp_block_default_parses(monkeypatch, raw, expected):
    monkeypatch.setenv("REPRO_MSSP", raw)
    assert mssp_block_default() == expected


def test_mssp_block_default_unset_is_default(monkeypatch):
    monkeypatch.delenv("REPRO_MSSP", raising=False)
    assert mssp_block_default() == DEFAULT_MSSP_BLOCK


@pytest.mark.parametrize("raw", ["junk", "-3", "3.5"])
def test_mssp_block_default_rejects_garbage(monkeypatch, raw):
    monkeypatch.setenv("REPRO_MSSP", raw)
    with pytest.raises(InvalidStepError):
        mssp_block_default()


# -- call-site equivalence ----------------------------------------------------


def _mssd(block, **kw):
    from repro.hopsets.multi_scale import build_hopset
    from repro.hopsets.params import HopsetParams
    from repro.sssp.multi_source import approximate_mssd

    g = _graph("layered")
    H, _ = build_hopset(g, HopsetParams(epsilon=0.25, beta=8))
    pram = PRAM()
    res = approximate_mssd(g, H, np.arange(10), pram=pram, block=block, **kw)
    return res, pram.cost


@pytest.mark.parametrize("block", [1, 4, 32], ids=lambda b: f"block{b}")
def test_mssd_matrix_equals_loop_bit_exactly(block):
    # engine="dense" on both sides: the loop then runs the exact schedule
    # the matrix replays, so charges — not just outputs — must be bit-equal
    loop, loop_cost = _mssd(0, engine="dense")   # block=0: per-source loop
    mat, mat_cost = _mssd(block, engine="dense")
    assert np.array_equal(loop.dist, mat.dist)
    assert np.array_equal(loop.parent, mat.parent)
    assert (mat.work, mat.depth) == (loop.work, loop.depth)
    assert (mat_cost.work, mat_cost.depth) == (loop_cost.work, loop_cost.depth)
    assert dict(mat_cost.phase_totals) == dict(loop_cost.phase_totals)


def test_mssd_auto_engine_keeps_outputs_exact():
    """Under the default auto engine the matrix changes *charges* (it
    replays the dense schedule — documented in docs/mssp.md), but the
    distance/parent matrices stay bit-identical to the loop."""
    loop, _ = _mssd(0)
    mat, _ = _mssd(8)
    assert np.array_equal(loop.dist, mat.dist)
    assert np.array_equal(loop.parent, mat.parent)


def test_mssd_sparse_engine_falls_back_to_loop():
    """An explicit sparse engine bypasses the matrix (it replays dense only)."""
    a, _ = _mssd(8, engine="sparse")
    b, _ = _mssd(0, engine="sparse")
    assert np.array_equal(a.dist, b.dist)
    assert (a.work, a.depth) == (b.work, b.depth)


def test_mssd_env_knob_flips_the_default(monkeypatch):
    monkeypatch.setenv("REPRO_MSSP", "off")
    loop, _ = _mssd(None, engine="dense")
    monkeypatch.setenv("REPRO_MSSP", "4")
    mat, _ = _mssd(None, engine="dense")
    assert np.array_equal(loop.dist, mat.dist)
    assert (loop.work, loop.depth) == (mat.work, mat.depth)


# -- the registered conformance runner ----------------------------------------


def test_conformance_runner_strict_clean():
    outs = run_primitive_diffs(
        seed=3, strict=True, primitives_subset=("relax_arcs_batch",)
    )
    assert outs, "relax_arcs_batch runner not registered"
    for o in outs:
        assert o.ok, (o.case, o.detail, o.races)
