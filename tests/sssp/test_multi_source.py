"""aMSSD: one hopset, many sources (Theorem 3.8)."""

import numpy as np
import pytest

from repro.graphs.distances import dijkstra
from repro.graphs.errors import VertexError
from repro.graphs.generators import erdos_renyi, layered_hop_graph
from repro.hopsets.multi_scale import build_hopset
from repro.hopsets.params import HopsetParams
from repro.pram.machine import PRAM
from repro.sssp.multi_source import approximate_mssd


@pytest.fixture(scope="module")
def setup():
    g = layered_hop_graph(10, 3, seed=61)
    H, _ = build_hopset(g, HopsetParams(epsilon=0.25, beta=8))
    return g, H


def test_each_row_is_a_valid_sssp(setup):
    g, H = setup
    sources = np.array([0, 5, 17])
    res = approximate_mssd(g, H, sources)
    for row, s in enumerate(sources):
        exact = dijkstra(g, int(s))
        fin = np.isfinite(exact) & (exact > 0)
        assert np.all(res.dist[row][fin] / exact[fin] <= 1.25 + 1e-9)
        assert res.dist[row][s] == 0.0


def test_work_scales_with_sources_depth_does_not(setup):
    g, H = setup
    one = approximate_mssd(g, H, np.array([0]))
    many = approximate_mssd(g, H, np.arange(8))
    assert many.work > 4 * one.work          # work ~ |S|
    # depth ~ max of parallel runs, not the |S|-fold sum; the slack covers
    # explorations converging after different round counts (the frontier
    # engine charges per executed round, see docs/frontier.md)
    assert many.depth <= 3 * one.depth


def test_outer_pram_charged_with_composition(setup):
    g, H = setup
    pram = PRAM()
    res = approximate_mssd(g, H, np.array([0, 1]), pram=pram)
    assert pram.cost.work == res.work
    assert pram.cost.depth == res.depth


def test_input_validation(setup):
    g, H = setup
    with pytest.raises(VertexError):
        approximate_mssd(g, H, np.zeros(0, dtype=np.int64))
    with pytest.raises(VertexError):
        approximate_mssd(g, H, np.array([[0, 1]]))


def test_shapes(setup):
    g, H = setup
    res = approximate_mssd(g, H, np.array([2, 4]))
    assert res.dist.shape == (2, g.n)
    assert res.parent.shape == (2, g.n)


def test_failed_exploration_releases_shared_pool(setup):
    """A mid-sweep error must not leave the outer machine's pool pinned.

    approximate_mssd validates the *array shape* up front, not each
    vertex, so an out-of-range source surfaces inside the per-source
    loop — after earlier explorations already populated the shared
    workspace with round buffers and the cached plan of G ∪ H.  The
    regression: those stayed pinned in the caller's pool after the raise.
    """
    g, H = setup
    pram = PRAM()
    with pytest.raises(VertexError):
        approximate_mssd(g, H, np.array([0, 1, g.n + 7]), pram=pram)
    assert not pram.workspace._buffers   # round buffers released
    assert not pram.workspace._plans     # abandoned union-graph plan dropped

    # the machine (and its pool) stays fully serviceable afterwards
    ok = approximate_mssd(g, H, np.array([0]), pram=pram)
    assert np.isfinite(ok.dist[0]).any()


def test_successful_sweep_keeps_pool_warm(setup):
    """The release is error-path-only: a clean sweep keeps its buffers."""
    g, H = setup
    pram = PRAM()
    approximate_mssd(g, H, np.array([0, 1]), pram=pram)
    assert pram.workspace._buffers  # warm pool retained for the next sweep
