"""Hopset-backed distance oracle."""

import numpy as np
import pytest

from repro.graphs.distances import dijkstra
from repro.graphs.errors import VertexError
from repro.graphs.generators import erdos_renyi
from repro.hopsets.multi_scale import build_hopset
from repro.hopsets.params import HopsetParams
from repro.sssp.oracle import HopsetDistanceOracle


@pytest.fixture(scope="module")
def setup():
    g = erdos_renyi(36, 0.12, seed=401, w_range=(1.0, 3.0))
    H, _ = build_hopset(g, HopsetParams(epsilon=0.25, beta=8))
    return g, H


def test_queries_within_epsilon(setup):
    g, H = setup
    oracle = HopsetDistanceOracle(g, H)
    for s in (0, 5):
        exact = dijkstra(g, s)
        for t in range(g.n):
            if t == s:
                assert oracle.query(s, t) == 0.0
                continue
            approx = oracle.query(s, t)
            assert exact[t] - 1e-9 <= approx <= 1.25 * exact[t] + 1e-9


def test_symmetric_query_uses_cache(setup):
    g, H = setup
    oracle = HopsetDistanceOracle(g, H)
    oracle.query(3, 7)
    before = oracle.explorations
    # reversed query answered from the cached side
    oracle.query(9, 3)
    assert oracle.explorations == before
    assert oracle.hits >= 1


def test_lru_eviction(setup):
    g, H = setup
    oracle = HopsetDistanceOracle(g, H, cache_size=2)
    oracle.distances_from(0)
    oracle.distances_from(1)
    oracle.distances_from(2)  # evicts 0
    assert oracle.cache_info()["cached_sources"] == 2
    before = oracle.explorations
    oracle.distances_from(0)  # must recompute
    assert oracle.explorations == before + 1


def test_batch_matches_single(setup):
    g, H = setup
    oracle = HopsetDistanceOracle(g, H)
    mat = oracle.batch(np.array([0, 4, 9]))
    assert mat.shape == (3, g.n)
    assert np.array_equal(mat[1], oracle.distances_from(4))


def test_cache_outcomes_feed_metrics_and_traffic(setup):
    from repro.obs.metrics import MetricsRegistry
    from repro.pram.machine import PRAM

    g, H = setup
    pram = PRAM()
    registry = MetricsRegistry.attach(pram.cost)
    oracle = HopsetDistanceOracle(g, H, pram=pram, metrics=registry)
    oracle.query(0, 5)   # miss (explore 0)
    oracle.query(5, 0)   # hit  (cached side)
    oracle.query(0, 9)   # hit  (source 0 cached)
    registry.detach(pram.cost)
    assert registry.counter("oracle.cache.hit").value == 2
    assert registry.counter("oracle.cache.miss").value == 1
    # the same outcomes also rode the cost-model traffic stream
    assert registry.counter("primitive.oracle.cache.hit.calls").value == 2
    assert registry.counter("primitive.oracle.cache.miss.calls").value == 1
    # and a metrics-less oracle still works (traffic no-ops unsubscribed)
    bare = HopsetDistanceOracle(g, H)
    assert bare.query(0, 5) == oracle.query(0, 5)


def test_validation(setup):
    g, H = setup
    oracle = HopsetDistanceOracle(g, H)
    with pytest.raises(VertexError):
        oracle.query(0, g.n)
    with pytest.raises(VertexError):
        oracle.distances_from(-1)
    with pytest.raises(VertexError):
        HopsetDistanceOracle(g, H, cache_size=0)
    from repro.hopsets.hopset import Hopset

    with pytest.raises(VertexError):
        HopsetDistanceOracle(g, Hopset(n=g.n + 1))
