"""Hopset-backed distance oracle."""

import numpy as np
import pytest

from repro.graphs.distances import dijkstra
from repro.graphs.errors import VertexError
from repro.graphs.generators import erdos_renyi
from repro.hopsets.multi_scale import build_hopset
from repro.hopsets.params import HopsetParams
from repro.sssp.oracle import HopsetDistanceOracle


@pytest.fixture(scope="module")
def setup():
    g = erdos_renyi(36, 0.12, seed=401, w_range=(1.0, 3.0))
    H, _ = build_hopset(g, HopsetParams(epsilon=0.25, beta=8))
    return g, H


def test_queries_within_epsilon(setup):
    g, H = setup
    oracle = HopsetDistanceOracle(g, H)
    for s in (0, 5):
        exact = dijkstra(g, s)
        for t in range(g.n):
            if t == s:
                assert oracle.query(s, t) == 0.0
                continue
            approx = oracle.query(s, t)
            assert exact[t] - 1e-9 <= approx <= 1.25 * exact[t] + 1e-9


def test_symmetric_query_uses_cache(setup):
    g, H = setup
    oracle = HopsetDistanceOracle(g, H)
    oracle.query(3, 7)
    before = oracle.explorations
    # reversed query answered from the cached side
    oracle.query(9, 3)
    assert oracle.explorations == before
    assert oracle.hits >= 1


def test_lru_eviction(setup):
    g, H = setup
    oracle = HopsetDistanceOracle(g, H, cache_size=2)
    oracle.distances_from(0)
    oracle.distances_from(1)
    oracle.distances_from(2)  # evicts 0
    assert oracle.cache_info()["cached_sources"] == 2
    before = oracle.explorations
    oracle.distances_from(0)  # must recompute
    assert oracle.explorations == before + 1


def test_batch_matches_single(setup):
    g, H = setup
    oracle = HopsetDistanceOracle(g, H)
    mat = oracle.batch(np.array([0, 4, 9]))
    assert mat.shape == (3, g.n)
    assert np.array_equal(mat[1], oracle.distances_from(4))


def test_validation(setup):
    g, H = setup
    oracle = HopsetDistanceOracle(g, H)
    with pytest.raises(VertexError):
        oracle.query(0, g.n)
    with pytest.raises(VertexError):
        oracle.distances_from(-1)
    with pytest.raises(VertexError):
        HopsetDistanceOracle(g, H, cache_size=0)
    from repro.hopsets.hopset import Hopset

    with pytest.raises(VertexError):
        HopsetDistanceOracle(g, Hopset(n=g.n + 1))
