"""Hopset-backed distance oracle."""

import numpy as np
import pytest

from repro.graphs.distances import dijkstra
from repro.graphs.errors import VertexError
from repro.graphs.generators import erdos_renyi
from repro.hopsets.multi_scale import build_hopset
from repro.hopsets.params import HopsetParams
from repro.sssp.oracle import HopsetDistanceOracle


@pytest.fixture(scope="module")
def setup():
    g = erdos_renyi(36, 0.12, seed=401, w_range=(1.0, 3.0))
    H, _ = build_hopset(g, HopsetParams(epsilon=0.25, beta=8))
    return g, H


def test_queries_within_epsilon(setup):
    g, H = setup
    oracle = HopsetDistanceOracle(g, H)
    for s in (0, 5):
        exact = dijkstra(g, s)
        for t in range(g.n):
            if t == s:
                assert oracle.query(s, t) == 0.0
                continue
            approx = oracle.query(s, t)
            assert exact[t] - 1e-9 <= approx <= 1.25 * exact[t] + 1e-9


def test_symmetric_query_uses_cache(setup):
    g, H = setup
    oracle = HopsetDistanceOracle(g, H)
    oracle.query(3, 7)
    before = oracle.explorations
    # reversed query answered from the cached side
    oracle.query(9, 3)
    assert oracle.explorations == before
    assert oracle.hits >= 1


def test_lru_eviction(setup):
    g, H = setup
    oracle = HopsetDistanceOracle(g, H, cache_size=2)
    oracle.distances_from(0)
    oracle.distances_from(1)
    oracle.distances_from(2)  # evicts 0
    assert oracle.cache_info()["cached_sources"] == 2
    before = oracle.explorations
    oracle.distances_from(0)  # must recompute
    assert oracle.explorations == before + 1


def test_batch_matches_single(setup):
    g, H = setup
    oracle = HopsetDistanceOracle(g, H)
    mat = oracle.batch(np.array([0, 4, 9]))
    assert mat.shape == (3, g.n)
    assert np.array_equal(mat[1], oracle.distances_from(4))


def test_cache_outcomes_feed_metrics_and_traffic(setup):
    from repro.obs.metrics import MetricsRegistry
    from repro.pram.machine import PRAM

    g, H = setup
    pram = PRAM()
    registry = MetricsRegistry.attach(pram.cost)
    oracle = HopsetDistanceOracle(g, H, pram=pram, metrics=registry)
    oracle.query(0, 5)   # miss (explore 0)
    oracle.query(5, 0)   # hit  (cached side)
    oracle.query(0, 9)   # hit  (source 0 cached)
    registry.detach(pram.cost)
    assert registry.counter("oracle.cache.hit").value == 2
    assert registry.counter("oracle.cache.miss").value == 1
    # the same outcomes also rode the cost-model traffic stream
    assert registry.counter("primitive.oracle.cache.hit.calls").value == 2
    assert registry.counter("primitive.oracle.cache.miss.calls").value == 1
    # and a metrics-less oracle still works (traffic no-ops unsubscribed)
    bare = HopsetDistanceOracle(g, H)
    assert bare.query(0, 5) == oracle.query(0, 5)


def test_validation(setup):
    g, H = setup
    oracle = HopsetDistanceOracle(g, H)
    with pytest.raises(VertexError):
        oracle.query(0, g.n)
    with pytest.raises(VertexError):
        oracle.distances_from(-1)
    with pytest.raises(VertexError):
        HopsetDistanceOracle(g, H, cache_size=0)
    from repro.hopsets.hopset import Hopset

    with pytest.raises(VertexError):
        HopsetDistanceOracle(g, Hopset(n=g.n + 1))


# -- serving-PR edge cases (cache_size=1, either-endpoint pairs, counters) ---


def test_cache_size_one_eviction_order(setup):
    """cache_size=1: every new source evicts the previous one, LRU-exact."""
    g, H = setup
    oracle = HopsetDistanceOracle(g, H, cache_size=1)
    oracle.distances_from(0)
    assert oracle.is_cached(0)
    oracle.distances_from(1)  # evicts 0 immediately
    assert oracle.is_cached(1) and not oracle.is_cached(0)
    assert oracle.cache_info()["cached_sources"] == 1
    before = oracle.explorations
    oracle.distances_from(1)  # resident: no new exploration
    assert oracle.explorations == before
    oracle.distances_from(0)  # evicted: must re-explore, evicts 1
    assert oracle.explorations == before + 1
    assert oracle.is_cached(0) and not oracle.is_cached(1)


def test_pair_query_served_from_either_cached_endpoint(setup):
    """query(u, v) swaps to whichever endpoint is resident (and only then)."""
    g, H = setup
    oracle = HopsetDistanceOracle(g, H, cache_size=4)
    oracle.distances_from(7)  # cache source 7 only
    before = oracle.explorations
    got = oracle.query(2, 7)  # u not cached, v cached: answered from 7's side
    assert oracle.explorations == before
    assert got == float(oracle.distances_from(7)[2])
    # when *both* endpoints are cached, the first-named one wins
    oracle.distances_from(2)
    assert oracle.query(2, 7) == float(oracle.distances_from(2)[7])
    # when neither is cached, u is explored (no swap target)
    oracle2 = HopsetDistanceOracle(g, H, cache_size=4)
    oracle2.query(3, 9)
    assert oracle2.is_cached(3) and not oracle2.is_cached(9)


def test_hit_miss_counters_consistent_with_cache_info(setup):
    g, H = setup
    oracle = HopsetDistanceOracle(g, H, cache_size=2)
    for s in (0, 1, 0, 2, 0, 1):  # mix of misses, hits, and re-explorations
        oracle.distances_from(s)
    info = oracle.cache_info()
    assert info["hits"] == oracle.hits
    assert info["misses"] == oracle.misses
    assert info["explorations"] == oracle.explorations
    assert info["misses"] == info["explorations"]  # every miss explores
    assert info["hits"] + info["misses"] == 6  # one outcome per lookup
    assert info["cached_sources"] == 2


def test_is_cached_does_not_touch_lru(setup):
    g, H = setup
    oracle = HopsetDistanceOracle(g, H, cache_size=2)
    oracle.distances_from(0)
    oracle.distances_from(1)
    hits = oracle.hits
    assert oracle.is_cached(0) and oracle.is_cached(1)
    assert oracle.hits == hits  # probes count nothing
    oracle.distances_from(2)  # evicts 0 (probing 0 above must not refresh it)
    assert not oracle.is_cached(0)


def test_path_walks_union_tree_and_matches_query(setup):
    g, H = setup
    from repro.sssp.oracle import tree_path

    oracle = HopsetDistanceOracle(g, H)
    walk = oracle.path(0, 9)
    assert walk is not None and walk[0] == 0 and walk[-1] == 9
    dist, parent = oracle.vectors_from(0)
    assert walk == tree_path(parent, 0, 9, g.n)
    assert oracle.path(4, 4) == [4]
    # reversed pair from the cached side: the reversed walk
    rev = oracle.path(9, 0)
    assert rev == walk[::-1]
    with pytest.raises(VertexError):
        oracle.path(0, g.n)


def test_tree_path_detects_broken_trees():
    import numpy as np

    from repro.sssp.oracle import tree_path

    parent = np.array([-1, 0, 1, -1], dtype=np.int64)
    assert tree_path(parent, 0, 2, 4) == [0, 1, 2]
    assert tree_path(parent, 0, 3, 4) is None  # 3 has no parent
    cyclic = np.array([1, 0, 2, 2], dtype=np.int64)
    assert tree_path(cyclic, 3, 0, 4) is None  # walk exceeds n steps
