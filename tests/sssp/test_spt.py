"""Section 4 peeling: (1+ε)-SPT extraction from path-reporting hopsets."""

import numpy as np
import pytest

from repro.graphs.distances import dijkstra
from repro.graphs.generators import erdos_renyi, layered_hop_graph, path_graph
from repro.hopsets.errors import PathReportingError
from repro.hopsets.multi_scale import build_hopset
from repro.hopsets.params import HopsetParams
from repro.hopsets.path_reporting import build_path_reporting_hopset
from repro.sssp.spt import approximate_spt


def check_tree(g, spt, source, eps):
    """Assert Theorem 4.6's deliverables on a computed SPT."""
    exact = dijkstra(g, source)
    n = g.n
    for v in range(n):
        p = int(spt.parent[v])
        if v == source:
            assert p == source
            continue
        if not np.isfinite(exact[v]):
            assert p == -1
            continue
        # parent edge belongs to the ORIGINAL graph
        assert p >= 0 and g.has_edge(p, v), f"tree edge ({p},{v}) not in G"
        # distances are exact tree distances
        assert np.isclose(spt.dist[v], spt.dist[p] + g.edge_weight(p, v))
    fin = np.isfinite(exact) & (exact > 0)
    ratios = spt.dist[fin] / exact[fin]
    assert np.all(spt.dist[fin] >= exact[fin] - 1e-9)  # tree can't beat exact
    assert float(ratios.max()) <= 1 + eps + 1e-9


def test_spt_on_deep_layered_graph():
    g = layered_hop_graph(10, 4, seed=71)
    H, _ = build_path_reporting_hopset(g, HopsetParams(epsilon=0.25, beta=8))
    spt = approximate_spt(g, H, 0)
    check_tree(g, spt, 0, eps=0.25)
    assert sum(spt.replacements.values()) > 0  # peeling actually happened


def test_spt_on_weighted_path():
    g = path_graph(40, w_range=(1.0, 3.0), seed=72)
    H, _ = build_path_reporting_hopset(g, HopsetParams(epsilon=0.3, beta=8))
    spt = approximate_spt(g, H, 0)
    check_tree(g, spt, 0, eps=0.3)


def test_spt_multiple_sources_one_hopset():
    g = erdos_renyi(30, 0.12, seed=73, w_range=(1.0, 2.0))
    H, _ = build_path_reporting_hopset(g, HopsetParams(epsilon=0.25, beta=8))
    for s in (0, 9, 21):
        spt = approximate_spt(g, H, s)
        check_tree(g, spt, s, eps=0.25)


def test_spt_acyclic_even_with_many_replacements():
    g = layered_hop_graph(12, 3, seed=74)
    H, _ = build_path_reporting_hopset(g, HopsetParams(epsilon=0.25, beta=6))
    spt = approximate_spt(g, H, 0)
    # pointer_jump would raise on a cycle; verify reachability instead:
    reached = 0
    for v in range(g.n):
        cur, steps = v, 0
        while int(spt.parent[cur]) != cur and steps <= g.n:
            cur = int(spt.parent[cur])
            steps += 1
        if cur == 0:
            reached += 1
    assert reached == g.n  # connected graph: all chains end at the root


def test_spt_requires_path_reporting_hopset():
    g = path_graph(10)
    H, _ = build_hopset(g, HopsetParams(beta=4))  # no memory paths
    if H.num_records:
        with pytest.raises(PathReportingError):
            approximate_spt(g, H, 0)


def test_spt_unreachable_vertices():
    from repro.graphs.build import from_edges

    g = from_edges(5, [(0, 1, 1.0), (1, 2, 1.0)])
    H, _ = build_path_reporting_hopset(g, HopsetParams(beta=4))
    spt = approximate_spt(g, H, 0)
    assert spt.dist[3] == np.inf and spt.parent[3] == -1


def test_tree_edges_helper():
    g = path_graph(6, weight=1.0)
    H, _ = build_path_reporting_hopset(g, HopsetParams(beta=4))
    spt = approximate_spt(g, H, 0)
    edges = spt.tree_edges()
    assert len(edges) == 5  # spanning tree of a connected 6-vertex graph


def test_spt_spans_even_with_weak_hopset():
    """Fuzz-found regression: with a hopset too weak for (1+eps) at 2beta+1
    hops, the default budget must still yield a *spanning* tree (the
    Bellman-Ford runs to its fixpoint; early exit keeps it cheap)."""
    g = path_graph(32, w_range=(1.0, 5.0), seed=762534)
    H, _ = build_path_reporting_hopset(
        g, HopsetParams(epsilon=0.1, kappa=2, rho=0.3, beta=4)
    )
    spt = approximate_spt(g, H, 0)
    exact = dijkstra(g, 0)
    for v in range(g.n):
        p = int(spt.parent[v])
        if v == 0:
            continue
        assert p >= 0 and g.has_edge(p, v)
    assert np.all(spt.dist >= exact - 1e-6)
    assert np.all(np.isfinite(spt.dist))


def test_spt_explicit_truncated_budget_leaves_far_vertices_unreached():
    g = path_graph(32, w_range=(1.0, 5.0), seed=762534)
    H, _ = build_path_reporting_hopset(
        g, HopsetParams(epsilon=0.1, kappa=2, rho=0.3, beta=4)
    )
    spt = approximate_spt(g, H, 0, hop_budget=3)
    assert np.any(~np.isfinite(spt.dist))  # documented truncation behaviour
