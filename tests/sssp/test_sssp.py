"""End-to-end (1+ε)-SSSP (Theorem 3.8)."""

import numpy as np

from repro.graphs.distances import dijkstra
from repro.graphs.generators import erdos_renyi, layered_hop_graph, path_graph
from repro.hopsets.multi_scale import build_hopset
from repro.hopsets.params import HopsetParams
from repro.pram.machine import PRAM
from repro.sssp.sssp import approximate_sssp, approximate_sssp_with_hopset


def stretch(exact, approx):
    fin = np.isfinite(exact) & (exact > 0)
    return float(np.max(approx[fin] / exact[fin]))


def test_sssp_within_epsilon_on_deep_graph():
    g = layered_hop_graph(12, 4, seed=51)
    res = approximate_sssp(g, 0, HopsetParams(epsilon=0.25, beta=8))
    exact = dijkstra(g, 0)
    assert stretch(exact, res.dist) <= 1.25 + 1e-9
    assert np.all(res.dist >= exact - 1e-9)  # never under-estimates


def test_sssp_on_weighted_path():
    g = path_graph(48, w_range=(1.0, 3.0), seed=52)
    res = approximate_sssp(g, 0, HopsetParams(epsilon=0.3, beta=8))
    exact = dijkstra(g, 0)
    assert stretch(exact, res.dist) <= 1.3 + 1e-6


def test_reuse_prebuilt_hopset_across_sources():
    g = erdos_renyi(30, 0.12, seed=53, w_range=(1.0, 3.0))
    H, _ = build_hopset(g, HopsetParams(epsilon=0.25, beta=8))
    for s in (0, 7, 19):
        res = approximate_sssp_with_hopset(g, H, s)
        exact = dijkstra(g, s)
        assert stretch(exact, res.dist) <= 1.25 + 1e-9


def test_query_cost_is_tiny_vs_build_cost():
    g = erdos_renyi(40, 0.1, seed=54)
    res = approximate_sssp(g, 0, HopsetParams(beta=6))
    assert res.build_report is not None
    assert res.query_cost.work < res.build_report.work / 10


def test_rounds_bounded_by_budget():
    g = path_graph(60, weight=1.0)
    H, _ = build_hopset(g, HopsetParams(beta=6))
    res = approximate_sssp_with_hopset(g, H, 0, hop_budget=13)
    assert res.rounds_used <= 13


def test_explicit_hop_budget_controls_accuracy():
    g = path_graph(40, weight=1.0)
    H, _ = build_hopset(g, HopsetParams(epsilon=0.25, beta=8))
    exact = dijkstra(g, 0)
    tight = approximate_sssp_with_hopset(g, H, 0, hop_budget=39)
    loose = approximate_sssp_with_hopset(g, H, 0, hop_budget=2)
    assert stretch(exact, tight.dist) <= stretch(exact, loose.dist) + 1e-12


def test_source_recorded():
    g = path_graph(10)
    res = approximate_sssp(g, 4, HopsetParams(beta=4))
    assert res.source == 4 and res.dist[4] == 0.0
