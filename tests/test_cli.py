"""CLI: generate → build → query → certify round trips."""

import numpy as np
import pytest

from repro.cli import main
from repro.serialize import load_graph, load_hopset


@pytest.fixture
def graph_file(tmp_path):
    p = tmp_path / "g.npz"
    assert main(["gen", str(p), "--family", "er", "--n", "40", "--seed", "3"]) == 0
    return p


def test_gen_families(tmp_path):
    for fam in ("er", "path", "layered", "powerlaw", "wide"):
        p = tmp_path / f"{fam}.npz"
        assert main(["gen", str(p), "--family", fam, "--n", "24", "--seed", "1"]) == 0
        g = load_graph(p)
        assert g.n >= 2 and g.num_edges > 0


def test_gen_unknown_family(tmp_path):
    assert main(["gen", str(tmp_path / "x.npz"), "--family", "nope"]) == 2


def test_build_and_info(tmp_path, graph_file, capsys):
    h = tmp_path / "h.npz"
    assert main(["build", str(graph_file), str(h), "--beta", "6"]) == 0
    assert main(["info", str(h)]) == 0
    out = capsys.readouterr().out
    assert "hopset" in out and "beta=6" in out
    assert main(["info", str(graph_file)]) == 0


def test_build_with_paths_and_spt(tmp_path, graph_file):
    h = tmp_path / "h.npz"
    assert main(["build", str(graph_file), str(h), "--beta", "6", "--paths"]) == 0
    hop = load_hopset(h)
    assert all(e.path is not None for e in hop.edges)
    tree = tmp_path / "t.npz"
    assert main(["spt", str(graph_file), str(h), "--source", "0", "--out", str(tree)]) == 0
    with np.load(tree) as data:
        assert data["parent"].shape == (40,)


def test_sssp_writes_distances(tmp_path, graph_file):
    h = tmp_path / "h.npz"
    main(["build", str(graph_file), str(h), "--beta", "8"])
    out = tmp_path / "d.npz"
    assert main(["sssp", str(graph_file), str(h), "--source", "0", "--out", str(out)]) == 0
    with np.load(out) as data:
        assert np.isfinite(data["dist"]).all()
        assert data["dist"][0] == 0.0


def test_certify_pass_and_fail(tmp_path, graph_file):
    h = tmp_path / "h.npz"
    main(["build", str(graph_file), str(h), "--beta", "8"])
    assert main(["certify", str(graph_file), str(h), "--epsilon", "0.25"]) == 0
    # an impossible demand (1 hop, tiny epsilon) must exit nonzero
    assert main(
        ["certify", str(graph_file), str(h), "--beta", "1", "--epsilon", "0.0001"]
    ) == 1


def test_reduced_build(tmp_path):
    g = tmp_path / "wide.npz"
    main(["gen", str(g), "--family", "wide", "--n", "28", "--aspect", "1e5", "--seed", "5"])
    h = tmp_path / "h.npz"
    assert main(["build", str(g), str(h), "--beta", "8", "--reduce"]) == 0
    assert main(["sssp", str(g), str(h), "--source", "0"]) == 0


def test_reduced_paths_build_and_spt(tmp_path):
    g = tmp_path / "wide.npz"
    main(["gen", str(g), "--family", "wide", "--n", "24", "--aspect", "1e4", "--seed", "6"])
    h = tmp_path / "h.npz"
    assert main(["build", str(g), str(h), "--beta", "8", "--reduce", "--paths"]) == 0
    assert main(["spt", str(g), str(h), "--source", "0"]) == 0


@pytest.mark.parametrize("family", ["er", "grid"])
def test_trace_build_two_families(tmp_path, family, capsys):
    """Acceptance: traced build emits a valid Chrome trace with ≥95% span
    coverage and finite Theorem 3.7 watchdog constants on two families."""
    import json

    g = tmp_path / "g.npz"
    assert main(["gen", str(g), "--family", family, "--n", "49", "--seed", "9"]) == 0
    h = tmp_path / "h.npz"
    trace = tmp_path / "trace.json"
    jsonl = tmp_path / "spans.jsonl"
    assert main(
        [
            "trace", "build", str(g), str(h), "--beta", "6",
            "--trace-out", str(trace), "--jsonl", str(jsonl),
        ]
    ) == 0
    # the wrapped build still produced its artifact
    assert load_hopset(h).num_records >= 0
    doc = json.loads(trace.read_text())
    assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
    x_events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert x_events and all(e["dur"] >= 0 for e in x_events)
    other = doc["otherData"]
    assert other["span_coverage"] >= 0.95
    assert other["total_work"] > 0
    assert other["graph"]["n"] == 49
    watchdogs = {w["name"]: w for w in other["watchdogs"]}
    assert set(watchdogs) == {"thm3.7-depth", "thm3.7-work"}
    for w in watchdogs.values():
        assert w["constant"] > 0 and w["shape"] > 0
    # per-scale attribution is visible on the trace
    assert any(e["name"].startswith("scale") for e in x_events)
    assert "metrics" in other and other["metrics"]["counters"]["cost.work"] > 0
    assert len(jsonl.read_text().splitlines()) >= 2
    out = capsys.readouterr().out
    assert "theorem watchdogs" in out and "span coverage" in out


def test_trace_sssp_reports_query_watchdogs(tmp_path, graph_file, capsys):
    import json

    h = tmp_path / "h.npz"
    main(["build", str(graph_file), str(h), "--beta", "8"])
    trace = tmp_path / "q.json"
    assert main(
        ["trace", "sssp", str(graph_file), str(h), "--source", "0",
         "--trace-out", str(trace)]
    ) == 0
    doc = json.loads(trace.read_text())
    names = {w["name"] for w in doc["otherData"]["watchdogs"]}
    assert names == {"thm3.8-query-depth", "thm3.8-query-work"}
    assert doc["otherData"]["command"] == "sssp"


def test_edge_list_text_input(tmp_path):
    txt = tmp_path / "g.txt"
    txt.write_text("# comment\n0 1 1.0\n1 2 2.0\n2 3 1.5\n")
    h = tmp_path / "h.npz"
    assert main(["build", str(txt), str(h), "--beta", "4"]) == 0
    assert main(["sssp", str(txt), str(h), "--source", "0"]) == 0


@pytest.fixture
def hopset_file(tmp_path, graph_file):
    h = tmp_path / "h.npz"
    assert main(["build", str(graph_file), str(h), "--beta", "8"]) == 0
    return h


def test_oracle_point_queries(graph_file, hopset_file, capsys):
    rc = main([
        "oracle", str(graph_file), str(hopset_file),
        "--query", "0", "5", "--query", "5", "0", "--query", "3", "3",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "dist(0, 5)" in out and "dist(3, 3) ≈ 0" in out
    # the reverse query answers from the cached forward exploration
    assert "1 cache hits" in out and "explorations" in out


def test_oracle_batch_matches_sssp(tmp_path, graph_file, hopset_file):
    batch = tmp_path / "batch.npz"
    rc = main([
        "oracle", str(graph_file), str(hopset_file),
        "--batch", "0,3", "--out", str(batch),
    ])
    assert rc == 0
    single = tmp_path / "d0.npz"
    assert main([
        "sssp", str(graph_file), str(hopset_file), "--source", "0",
        "--out", str(single),
    ]) == 0
    with np.load(batch) as b, np.load(single) as s:
        assert np.array_equal(b["sources"], [0, 3])
        assert np.array_equal(b["dist"][0], s["dist"])


def test_oracle_interactive_loop(graph_file, hopset_file, capsys, monkeypatch):
    import io

    monkeypatch.setattr(
        "sys.stdin", io.StringIO("query 0 5\nstats\nquery 0 9999\nnonsense\nquit\n")
    )
    assert main(["oracle", str(graph_file), str(hopset_file)]) == 0
    out = capsys.readouterr().out
    assert "dist(0, 5)" in out
    assert "cached_sources" in out          # stats line
    assert "error: vertex 9999" in out      # bad query handled, loop continues
    assert "unrecognized" in out
    assert "oracle stats:" in out


def test_query_commands_accept_backend_flag(tmp_path, graph_file, hopset_file):
    base = tmp_path / "base.npz"
    shd = tmp_path / "shd.npz"
    assert main([
        "sssp", str(graph_file), str(hopset_file), "--source", "0",
        "--backend", "serial", "--out", str(base),
    ]) == 0
    assert main([
        "sssp", str(graph_file), str(hopset_file), "--source", "0",
        "--backend", "sharded:2", "--out", str(shd),
    ]) == 0
    with np.load(base) as b, np.load(shd) as s:
        assert np.array_equal(b["dist"], s["dist"])
        assert np.array_equal(b["parent"], s["parent"])
    assert main([
        "oracle", str(graph_file), str(hopset_file),
        "--query", "0", "1", "--backend", "serial",
    ]) == 0


def test_bad_backend_spec_is_rejected(graph_file, hopset_file):
    from repro.pram.errors import InvalidStepError

    with pytest.raises(InvalidStepError):
        main([
            "sssp", str(graph_file), str(hopset_file), "--source", "0",
            "--backend", "warp-drive",
        ])


def test_oracle_routes_cache_stats_through_metrics(graph_file, hopset_file, capsys):
    rc = main([
        "oracle", str(graph_file), str(hopset_file),
        "--query", "0", "5", "--query", "5", "0", "--query", "0", "7",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    # forward explores (miss), reverse hits the cache, third reuses source 0
    assert "oracle.cache.hit=2" in out
    assert "oracle.cache.miss=1" in out


def test_profile_build_prints_attribution_and_flame(tmp_path, graph_file, capsys):
    h = tmp_path / "h.npz"
    flame = tmp_path / "build.folded"
    rc = main([
        "profile", "build", str(graph_file), str(h), "--beta", "6",
        "--top", "5", "--flame-out", str(flame),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "per-scale (inclusive)" in out
    assert "per-scale phase wall (exclusive)" in out
    assert "hot primitives (top 5" in out
    assert flame.exists() and flame.stat().st_size > 0
    for line in flame.read_text().splitlines():
        frames, value = line.rsplit(" ", 1)
        assert frames.startswith("build") and int(value) > 0


def test_profile_sssp_runs(tmp_path, graph_file, hopset_file, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)  # default flame path lands in cwd
    rc = main(["profile", "sssp", str(graph_file), str(hopset_file), "--source", "0"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "hot primitives" in out
    assert (tmp_path / "profile_sssp.folded").exists()


def _write_bench(d, work):
    d.mkdir(exist_ok=True)
    (d / "BENCH_demo.json").write_text(
        '{"experiments": {"er": {"bit_exact": true, "work": %d}}}' % work
    )


def test_perf_append_then_check_gate(tmp_path, capsys):
    bench = tmp_path / "benchmarks"
    _write_bench(bench, 1000)
    assert main(["perf", "check", "--bench-dir", str(bench)]) == 0  # no baseline
    assert main(["perf", "append", "--bench-dir", str(bench)]) == 0
    assert main(["perf", "check", "--bench-dir", str(bench)]) == 0
    _write_bench(bench, 100_000)  # far beyond the 1.25x band
    assert main(["perf", "check", "--bench-dir", str(bench)]) == 1
    assert main(["perf", "check", "--bench-dir", str(bench), "--warn-only"]) == 0
    out = capsys.readouterr().out
    assert "REGRESSION" in out and "demo:er" in out


def test_perf_append_empty_dir_errors(tmp_path):
    empty = tmp_path / "nothing"
    empty.mkdir()
    assert main(["perf", "append", "--bench-dir", str(empty)]) == 2


def test_trace_sharded_emits_worker_lanes_and_health(tmp_path, graph_file,
                                                    hopset_file, capsys):
    import json

    from repro.pram.backends.base import _SINGLETONS

    trace = tmp_path / "t.json"
    # the default min_arcs guard keeps tiny graphs serial; force engagement
    from repro.pram.backends.sharded import ShardedBackend

    be = ShardedBackend(workers=2, min_arcs=1)
    _SINGLETONS["sharded:2"] = be
    try:
        rc = main([
            "trace", "sssp", str(graph_file), str(hopset_file), "--source", "0",
            "--backend", "sharded:2", "--trace-out", str(trace),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "backend health" in out and "per-worker compute" in out
        doc = json.loads(trace.read_text())
        names = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert names == {"parent", "worker 0", "worker 1"}
    finally:
        _SINGLETONS.pop("sharded:2", None)
        be.close()
