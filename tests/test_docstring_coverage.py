"""Quality gate: every public module, class, and function is documented.

Deliverable (e) requires doc comments on every public item; this test makes
the requirement executable.
"""

import importlib
import inspect
import pkgutil

import repro

EXEMPT_MODULES = {"repro.__main__"}


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name in EXEMPT_MODULES:
            continue
        yield importlib.import_module(info.name)


def test_every_module_has_a_docstring():
    missing = [m.__name__ for m in _walk_modules() if not (m.__doc__ or "").strip()]
    assert not missing, f"modules without docstrings: {missing}"


def test_every_public_symbol_has_a_docstring():
    missing: list[str] = []
    for mod in _walk_modules():
        public = getattr(mod, "__all__", None)
        if public is None:
            continue
        for name in public:
            obj = getattr(mod, name, None)
            if obj is None or not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue  # constants / re-exports of data
            if obj.__module__ != mod.__name__:
                continue  # documented where defined
            if not (inspect.getdoc(obj) or "").strip():
                missing.append(f"{mod.__name__}.{name}")
    assert not missing, f"public symbols without docstrings: {missing}"


def test_public_dataclasses_document_their_fields_or_class():
    """Dataclasses exposed in __all__ carry at least a class docstring."""
    import dataclasses

    undocumented = []
    for mod in _walk_modules():
        for name in getattr(mod, "__all__", []) or []:
            obj = getattr(mod, name, None)
            if inspect.isclass(obj) and dataclasses.is_dataclass(obj):
                if obj.__module__ == mod.__name__ and not (inspect.getdoc(obj) or "").strip():
                    undocumented.append(f"{mod.__name__}.{name}")
    assert not undocumented, undocumented
