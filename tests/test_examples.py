"""Smoke tests: every example script runs end to end (no example rot)."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).resolve().parents[1] / "examples").glob("*.py"))


def _load(path: Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    mod = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = mod
    spec.loader.exec_module(mod)
    return mod


@pytest.mark.parametrize("path", EXAMPLES, ids=[p.stem for p in EXAMPLES])
def test_example_runs(path, capsys):
    mod = _load(path)
    assert hasattr(mod, "main"), f"{path.name} must expose main()"
    mod.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{path.name} produced no output"


def test_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 3  # the deliverable floor; we ship six
