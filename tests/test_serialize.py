"""Persistence round trips for graphs and hopsets."""

import numpy as np
import pytest

from repro.graphs.generators import erdos_renyi
from repro.hopsets.errors import HopsetError
from repro.hopsets.hopset import INTERCONNECT, Hopset, HopsetEdge
from repro.hopsets.multi_scale import build_hopset
from repro.hopsets.params import HopsetParams
from repro.hopsets.path_reporting import build_path_reporting_hopset
from repro.serialize import load_graph, load_hopset, save_graph, save_hopset


@pytest.fixture
def graph():
    return erdos_renyi(30, 0.15, seed=201, w_range=(1.0, 3.0))


def test_graph_roundtrip(tmp_path, graph):
    p = tmp_path / "g.npz"
    save_graph(p, graph)
    g2 = load_graph(p)
    assert g2.n == graph.n
    assert np.array_equal(g2.edge_u, graph.edge_u)
    assert np.array_equal(g2.edge_v, graph.edge_v)
    assert np.array_equal(g2.edge_w, graph.edge_w)


def test_hopset_roundtrip(tmp_path, graph):
    H, _ = build_hopset(graph, HopsetParams(beta=6))
    p = tmp_path / "h.npz"
    save_hopset(p, H)
    H2 = load_hopset(p)
    assert H2.n == H.n and H2.beta == H.beta and H2.epsilon == H.epsilon
    a = [(e.u, e.v, e.weight, e.scale, e.phase, e.kind) for e in H.edges]
    b = [(e.u, e.v, e.weight, e.scale, e.phase, e.kind) for e in H2.edges]
    assert a == b
    assert H2.meta["k0"] == H.meta["k0"]


def test_hopset_roundtrip_with_paths(tmp_path, graph):
    H, _ = build_path_reporting_hopset(graph, HopsetParams(beta=6))
    p = tmp_path / "h.npz"
    save_hopset(p, H)
    H2 = load_hopset(p)
    assert all(e.path is not None for e in H2.edges)
    assert [e.path for e in H.edges] == [e.path for e in H2.edges]


def test_loaded_hopset_answers_queries(tmp_path, graph):
    from repro.graphs.distances import dijkstra
    from repro.sssp.sssp import approximate_sssp_with_hopset

    H, _ = build_hopset(graph, HopsetParams(epsilon=0.25, beta=8))
    p = tmp_path / "h.npz"
    save_hopset(p, H)
    H2 = load_hopset(p)
    res = approximate_sssp_with_hopset(graph, H2, 0)
    exact = dijkstra(graph, 0)
    fin = np.isfinite(exact) & (exact > 0)
    assert np.max(res.dist[fin] / exact[fin]) <= 1.25 + 1e-9


def test_empty_hopset_roundtrip(tmp_path):
    H = Hopset(n=5, beta=3, epsilon=0.1)
    p = tmp_path / "h.npz"
    save_hopset(p, H)
    H2 = load_hopset(p)
    assert H2.num_records == 0 and H2.n == 5


def test_partial_paths_rejected(tmp_path):
    H = Hopset(n=4)
    H.add(
        [
            HopsetEdge(0, 1, 1.0, 2, 0, INTERCONNECT, path=(0, 1)),
            HopsetEdge(1, 2, 1.0, 2, 0, INTERCONNECT),
        ]
    )
    with pytest.raises(HopsetError):
        save_hopset(tmp_path / "h.npz", H)


def _rewrite_with_format(src, dst, version):
    """Clone an .npz archive with its format stamp replaced."""
    with np.load(src, allow_pickle=False) as data:
        fields = {k: data[k] for k in data.files}
    fields["format"] = np.array([version])
    np.savez_compressed(dst, **fields)


def test_newer_format_version_rejected(tmp_path, graph):
    """Archives stamped by a future format must refuse to load, loudly."""
    gp = tmp_path / "g.npz"
    save_graph(gp, graph)
    _rewrite_with_format(gp, tmp_path / "g_new.npz", 99)
    with pytest.raises(HopsetError, match="newer format"):
        load_graph(tmp_path / "g_new.npz")

    H, _ = build_hopset(graph, HopsetParams(beta=4))
    hp = tmp_path / "h.npz"
    save_hopset(hp, H)
    _rewrite_with_format(hp, tmp_path / "h_new.npz", 99)
    with pytest.raises(HopsetError, match="newer format"):
        load_hopset(tmp_path / "h_new.npz")


def test_older_format_version_still_loads(tmp_path, graph):
    """The version gate is one-directional: v0 archives load fine today."""
    gp = tmp_path / "g.npz"
    save_graph(gp, graph)
    _rewrite_with_format(gp, tmp_path / "g_old.npz", 0)
    g2 = load_graph(tmp_path / "g_old.npz")
    assert g2.n == graph.n and np.array_equal(g2.edge_w, graph.edge_w)


def test_reduced_path_reporting_roundtrip(tmp_path, graph):
    """The §4 + App. C/D combination survives persistence intact."""
    from repro.hopsets.reduction_paths import build_reduced_path_reporting_hopset

    H, _ = build_reduced_path_reporting_hopset(graph, HopsetParams(beta=6))
    p = tmp_path / "h.npz"
    save_hopset(p, H)
    H2 = load_hopset(p)
    assert H2.meta.get("reduction") == H.meta.get("reduction")
    a = [(e.u, e.v, e.weight, e.scale, e.phase, e.kind, e.path) for e in H.edges]
    b = [(e.u, e.v, e.weight, e.scale, e.phase, e.kind, e.path) for e in H2.edges]
    assert a == b


def test_kind_mismatch_rejected(tmp_path, graph):
    p = tmp_path / "g.npz"
    save_graph(p, graph)
    with pytest.raises(HopsetError):
        load_hopset(p)
    H, _ = build_hopset(graph, HopsetParams(beta=4))
    ph = tmp_path / "h.npz"
    save_hopset(ph, H)
    with pytest.raises(HopsetError):
        load_graph(ph)
